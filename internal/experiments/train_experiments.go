package experiments

import (
	"fmt"
	"strings"

	moc "moc"
	"moc/internal/core"
	"moc/internal/fault"
	"moc/internal/report"
)

// Accuracy-experiment scale. The paper trains GPT-125M-8E / GPT-350M-16E
// for thousands of iterations on GPUs; the pure-Go reproduction trains a
// structurally identical tiny MoE (8 experts, top-2 gating, capacity-based
// dropping) for hundreds of iterations. Quick mode shrinks horizons
// further for tests/benchmarks.

func accuracyConfig(quick bool) moc.Config {
	return moc.Config{
		Layers: 4, Hidden: 32, Experts: 8, TopK: 2,
		Vocab: 64, Window: 8, BatchSize: 32,
		LR: 0.01, CapacityFactor: 1.5, GateNoise: 0.1,
		Seed: 20250330,
	}
}

func horizon(quick bool, full int) int {
	if quick {
		return full / 4
	}
	return full
}

// Fig05Cell is one cell of the Figure 5 grid.
type Fig05Cell struct {
	Kpec, Ickpt  int
	PLT          float64
	ValLoss      float64
	BaselineLoss float64 // non-fault validation loss
}

// Fig05PLTGrid reproduces Figure 5: the correlation between PLT and final
// validation loss across PEC configurations (K_pec × I_ckpt), each run
// experiencing one mid-training fault. The non-fault baseline anchors the
// comparison.
func Fig05PLTGrid(quick bool) ([]Fig05Cell, string) {
	total := 512
	kpecs := []int{1, 2, 4}
	ickpts := []int{2, 4, 8, 16, 32, 64}
	if quick {
		total = 256
		kpecs = []int{1, 4}
		ickpts = []int{4, 16, 32}
	}
	// Non-fault baseline.
	baseCfg := accuracyConfig(quick)
	baseCfg.Interval = 0
	base, err := moc.NewSystem(baseCfg, moc.NewMemStore())
	if err != nil {
		panic(err)
	}
	if _, err := base.RunTo(total); err != nil {
		panic(err)
	}
	baseLoss, _, err := base.Evaluate(512)
	if err != nil {
		panic(err)
	}
	base.Close()

	var cells []Fig05Cell
	t := report.NewTable(
		fmt.Sprintf("Figure 5: PLT vs final validation loss (non-fault loss %.4f, one mid-training fault)", baseLoss),
		"K_pec", "I_ckpt", "PLT", "Val loss", "Δ vs non-fault")
	for _, k := range kpecs {
		for _, iv := range ickpts {
			if iv >= total/2 {
				continue
			}
			cfg := accuracyConfig(quick)
			cfg.Interval = iv
			cfg.KSnapshot, cfg.KPersist = k, k
			cfg.Variant = moc.VariantWO
			s, err := moc.NewSystem(cfg, moc.NewMemStore())
			if err != nil {
				panic(err)
			}
			plan := fault.Midpoint(total)
			if err := runWithFaults(s, total, plan); err != nil {
				panic(err)
			}
			loss, _, err := s.Evaluate(512)
			if err != nil {
				panic(err)
			}
			cell := Fig05Cell{Kpec: k, Ickpt: iv, PLT: s.PLT(), ValLoss: loss, BaselineLoss: baseLoss}
			cells = append(cells, cell)
			t.Row(fmt.Sprintf("%d", k), fmt.Sprintf("%d", iv),
				report.Pct(cell.PLT), fmt.Sprintf("%.4f", loss),
				fmt.Sprintf("%+.4f", loss-baseLoss))
			s.Close()
		}
	}
	return cells, t.String()
}

// runWithFaults trains to the horizon, injecting the planned faults.
func runWithFaults(s *moc.System, total int, plan *fault.Plan) error {
	for s.Iteration() < total {
		next := total
		for _, f := range plan.Iterations() {
			if f > s.Iteration() && f < next {
				next = f
			}
		}
		if _, err := s.RunTo(next); err != nil {
			return err
		}
		if plan.IsFault(next) && s.Iteration() == next {
			if err := s.InjectFault(); err != nil {
				return err
			}
			// The fault consumed this schedule entry even though the
			// iteration counter rewound; advance past it by training one
			// step beyond the recovery point if needed.
			if s.Iteration() >= next {
				continue
			}
			// Replay up to (and past) the fault point without
			// re-triggering: IsFault entries are unique iterations, so
			// run one step past next to clear it.
			if _, err := s.RunTo(next); err != nil {
				return err
			}
			if _, err := s.Step(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig14aSeries is one variant's loss curve.
type Fig14aSeries struct {
	Variant   string
	Losses    []float64 // validation loss sampled during training
	FinalLoss float64
	PLT       float64
}

// Fig14a reproduces Figure 14(a): validation-loss curves while faults
// strike periodically, for the baseline (full checkpointing) and the PEC
// variants W, O, WO, and WO-2L (two-level recovery).
func Fig14a(quick bool) ([]Fig14aSeries, string) {
	total := horizon(quick, 600)
	faultEvery := total / 5
	interval := 20
	if quick {
		interval = 10
	}
	sample := total / 8

	variants := []struct {
		name     string
		variant  moc.Variant
		k        bool
		twoLevel bool
	}{
		{"Baseline", moc.VariantFull, false, false},
		{"W", moc.VariantW, true, false},
		{"O", moc.VariantO, true, false},
		{"WO", moc.VariantWO, true, false},
		{"WO-2L", moc.VariantWO, true, true},
	}
	var series []Fig14aSeries
	for _, v := range variants {
		cfg := accuracyConfig(quick)
		cfg.Interval = interval
		cfg.Variant = v.variant
		if v.k {
			cfg.KSnapshot, cfg.KPersist = 4, 1
		}
		cfg.TwoLevelRecovery = v.twoLevel
		s, err := moc.NewSystem(cfg, moc.NewMemStore())
		if err != nil {
			panic(err)
		}
		plan := fault.Every(faultEvery, total)
		cur := Fig14aSeries{Variant: v.name}
		for s.Iteration() < total {
			target := s.Iteration() + sample
			if target > total {
				target = total
			}
			if err := runWithFaults(s, target, plan); err != nil {
				panic(err)
			}
			loss, _, err := s.Evaluate(256)
			if err != nil {
				panic(err)
			}
			cur.Losses = append(cur.Losses, loss)
		}
		cur.FinalLoss = cur.Losses[len(cur.Losses)-1]
		cur.PLT = s.PLT()
		series = append(series, cur)
		s.Close()
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 14(a): validation loss with faults every %d iters (%d total)", faultEvery, total),
		"Variant", "Final loss", "Δ vs Baseline", "PLT")
	for _, sr := range series {
		t.Row(sr.Variant, fmt.Sprintf("%.4f", sr.FinalLoss),
			fmt.Sprintf("%+.4f", sr.FinalLoss-series[0].FinalLoss),
			report.Pct(sr.PLT))
	}
	return series, t.String()
}

// Fig14bSeries is one selection policy's accuracy trajectory.
type Fig14bSeries struct {
	Method     string
	Accuracies []float64
}

// Fig14b reproduces Figure 14(b): test accuracy of the vision-proxy model
// under baseline (full), PEC with sequential selection, and PEC with
// load-aware selection, with faults injected at several epochs.
func Fig14b(quick bool) ([]Fig14bSeries, string) {
	total := horizon(quick, 480)
	checkpoints := []int{total / 4, total / 2, total * 4 / 5}
	methods := []struct {
		name string
		sel  moc.Selection
		pec  bool
	}{
		{"Baseline", moc.SelectSequential, false},
		{"Sequential", moc.SelectSequential, true},
		{"Load-aware", moc.SelectLoadAware, true},
	}
	vocab := 64
	vision := moc.VisionCorpus(vocab)
	var series []Fig14bSeries
	evalPoints := []int{total / 10, total / 3, total * 2 / 3, total}
	for _, m := range methods {
		cfg := accuracyConfig(quick)
		cfg.Selection = m.sel
		cfg.Interval = 16
		if m.pec {
			cfg.KSnapshot, cfg.KPersist = 1, 1
			cfg.Variant = moc.VariantWO
		}
		s, err := moc.NewSystemOn(cfg, moc.NewMemStore(), vision)
		if err != nil {
			panic(err)
		}
		plan := fault.At(checkpoints...)
		cur := Fig14bSeries{Method: m.name}
		for _, pt := range evalPoints {
			if err := runWithFaults(s, pt, plan); err != nil {
				panic(err)
			}
			_, acc, err := s.EvaluateOn(vision, 256)
			if err != nil {
				panic(err)
			}
			cur.Accuracies = append(cur.Accuracies, acc)
		}
		series = append(series, cur)
		s.Close()
	}
	headers := []string{"Method"}
	for _, pt := range evalPoints {
		headers = append(headers, fmt.Sprintf("acc@%d", pt))
	}
	t := report.NewTable("Figure 14(b): vision-proxy test accuracy (faults at "+
		fmt.Sprint(checkpoints)+")", headers...)
	for _, sr := range series {
		row := []string{sr.Method}
		for _, a := range sr.Accuracies {
			row = append(row, report.Pct(a))
		}
		t.Row(row...)
	}
	return series, t.String()
}

// Fig15aPoint is one (K_snapshot, K_persist) configuration's PLT.
type Fig15aPoint struct {
	KSnapshot, KPersist int
	StoragePLT          float64
	TwoLevelPLT         float64
}

// Fig15a reproduces Figure 15(a): PLT under two-level recovery versus
// storage-only recovery, sweeping K_snapshot with K_persist = 1.
func Fig15a(quick bool) ([]Fig15aPoint, string) {
	total := horizon(quick, 320)
	ksnaps := []int{1, 2, 4, 8}
	run := func(ks int, twoLevel bool) float64 {
		cfg := accuracyConfig(quick)
		cfg.Interval = 8
		cfg.KSnapshot, cfg.KPersist = ks, 1
		cfg.Variant = moc.VariantWO
		cfg.TwoLevelRecovery = twoLevel
		s, err := moc.NewSystem(cfg, moc.NewMemStore())
		if err != nil {
			panic(err)
		}
		defer s.Close()
		plan := fault.At(total * 2 / 3)
		if err := runWithFaults(s, total, plan); err != nil {
			panic(err)
		}
		return s.PLT()
	}
	var pts []Fig15aPoint
	t := report.NewTable("Figure 15(a): PLT vs (K_snapshot, K_persist=1)",
		"(Ks,Kp)", "Storage recovery", "Two-level recovery")
	for _, ks := range ksnaps {
		p := Fig15aPoint{KSnapshot: ks, KPersist: 1,
			StoragePLT: run(ks, false), TwoLevelPLT: run(ks, true)}
		pts = append(pts, p)
		t.Row(fmt.Sprintf("(%d,1)", ks), report.Pct(p.StoragePLT), report.Pct(p.TwoLevelPLT))
	}
	return pts, t.String()
}

// Fig15bPoint is one fault-count measurement.
type Fig15bPoint struct {
	Faults     int
	FixedPLT   float64
	DynamicPLT float64
	DynamicK   int
}

// Fig15b reproduces Figure 15(b): cumulative PLT as faults accumulate, for
// fixed K_pec = 1 versus the Dynamic-K strategy, using the PLT ledger
// under uniform routing (the trainer-independent model the paper's plot
// reflects). The red K-trajectory of the paper appears as the DynamicK
// column.
func Fig15b() ([]Fig15bPoint, string) {
	const (
		layers  = 4
		experts = 16
		ickpt   = 4
		total   = 16384 // fixed training horizon; faults accumulate inside it
	)
	run := func(dynamic bool, faults int) (float64, int) {
		tr := core.NewPLTTracker(layers, experts)
		sel := core.NewSequentialSelector(layers, experts)
		k := 1
		var dk *core.DynamicK
		if dynamic {
			dk = core.NewDynamicK(experts, 1)
		}
		round := 0
		spacing := total / (faults + 1)
		perExpert := make([]float64, experts)
		for i := range perExpert {
			perExpert[i] = 1
		}
		injected := 0
		var cum float64 // cumulative PLT: the quantity Fig. 15(b) plots
		for it := 1; it <= total; it++ {
			for l := 0; l < layers; l++ {
				tr.RecordBatch(l, perExpert, experts)
			}
			if it%ickpt == 0 {
				tr.RecordCheckpoint(sel.Select(round, k))
				round++
			}
			if injected < faults && it%spacing == 0 && it < total {
				injected++
				delta := tr.RecordFault()
				cum += delta
				if dk != nil {
					k = dk.OnFault(delta)
				}
			}
		}
		return cum, k
	}
	var pts []Fig15bPoint
	t := report.NewTable("Figure 15(b): cumulative PLT vs fault count (threshold 3.75%)",
		"Faults", "K_pec=1 fixed", "Dynamic-K PLT", "Dynamic-K value")
	for _, f := range []int{1, 2, 4, 8, 16, 32} {
		fixed, _ := run(false, f)
		dyn, k := run(true, f)
		pts = append(pts, Fig15bPoint{Faults: f, FixedPLT: fixed, DynamicPLT: dyn, DynamicK: k})
		t.Row(fmt.Sprintf("%d", f), report.Pct(fixed), report.Pct(dyn), fmt.Sprintf("%d", k))
	}
	return pts, t.String()
}

// Table3Row is one checkpointing variant's downstream evaluation.
type Table3Row struct {
	Method   string
	CkptSize float64 // relative to baseline
	Scores   []moc.TaskScore
	Average  float64
}

// Table3 reproduces Table 3: downstream-task accuracy of models pre-
// trained under the checkpointing variants of Fig. 14(a), plus relative
// checkpoint sizes.
func Table3(quick bool) ([]Table3Row, string) {
	total := horizon(quick, 600)
	faultEvery := total / 5
	comp := core.Composition{ExpertShare: core.PaperMeasuredExpertShare}
	// Relative checkpoint sizes from the measured composition: weights
	// are 2/14 of state bytes, optimizer 12/14, expert share as measured.
	const wFrac = 2.0 / 14.0
	expertShare := comp.ExpertShare
	persistK, n := 1.0, 8.0
	savedFraction := func(pecW, pecO bool) float64 {
		s := 1.0
		if pecW {
			s -= expertShare * wFrac * (1 - persistK/n)
		}
		if pecO {
			s -= expertShare * (1 - wFrac) * (1 - persistK/n)
		}
		return s
	}
	variants := []struct {
		name     string
		variant  moc.Variant
		k        bool
		twoLevel bool
		size     float64
	}{
		{"Baseline", moc.VariantFull, false, false, 1},
		{"W", moc.VariantW, true, false, savedFraction(true, false)},
		{"O", moc.VariantO, true, false, savedFraction(false, true)},
		{"WO", moc.VariantWO, true, false, savedFraction(true, true)},
		{"WO-2L", moc.VariantWO, true, true, savedFraction(true, true)},
	}

	var rows []Table3Row
	names := []string{}
	for _, v := range variants {
		cfg := accuracyConfig(quick)
		cfg.Interval = 20
		cfg.Variant = v.variant
		if v.k {
			cfg.KSnapshot, cfg.KPersist = 4, 1
		}
		cfg.TwoLevelRecovery = v.twoLevel
		s, err := moc.NewSystem(cfg, moc.NewMemStore())
		if err != nil {
			panic(err)
		}
		plan := fault.Every(faultEvery, total)
		if err := runWithFaults(s, total, plan); err != nil {
			panic(err)
		}
		scores, avg, err := s.Downstream(192)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table3Row{Method: v.name, CkptSize: v.size, Scores: scores, Average: avg})
		if len(names) == 0 {
			for _, sc := range scores {
				names = append(names, sc.Task)
			}
		}
		s.Close()
	}
	headers := append([]string{"Method", "Ckpt"}, names...)
	headers = append(headers, "Avg")
	t := report.NewTable("Table 3: downstream-task accuracy (%) after faulty pre-training", headers...)
	for _, r := range rows {
		row := []string{r.Method, fmt.Sprintf("%.2f", r.CkptSize)}
		for _, sc := range r.Scores {
			row = append(row, fmt.Sprintf("%.2f", 100*sc.Accuracy))
		}
		row = append(row, fmt.Sprintf("%.2f", 100*r.Average))
		t.Row(row...)
	}
	return rows, t.String()
}

// Table4Row is one fine-tuning variant's evaluation.
type Table4Row struct {
	Method        string
	FinetuneAcc   float64 // held-out accuracy on the fine-tuning domain
	DownstreamAvg float64
}

// Table4 reproduces Table 4: fine-tuning a pre-trained model on the
// instruction-tuning proxy corpus with a mid-run fault, comparing no
// fine-tuning (Base), fine-tuning with frozen experts (FT-w.o.E), full
// checkpointing (FT-Full), and PEC checkpointing (FT-PEC, 1/8 experts).
func Table4(quick bool) ([]Table4Row, string) {
	pretrainIters, ftIters, samples := 400, 400, 1024
	if quick {
		pretrainIters, ftIters, samples = 200, 160, 512
	}
	vocab := 64
	ftCorpus := moc.FinetuneCorpus(vocab)

	pretrain := func(freeze bool, variant moc.Variant, kpec bool) *moc.System {
		cfg := accuracyConfig(quick)
		cfg.Interval = 0
		s, err := moc.NewSystem(cfg, moc.NewMemStore())
		if err != nil {
			panic(err)
		}
		if _, err := s.RunTo(pretrainIters); err != nil {
			panic(err)
		}
		return s
	}
	// Base: pre-trained only.
	base := pretrain(false, moc.VariantFull, false)
	defer base.Close()
	baseFT, baseFTAcc, err := base.EvaluateOn(ftCorpus, samples)
	_ = baseFT
	if err != nil {
		panic(err)
	}
	_, baseAvg, err := base.Downstream(128)
	if err != nil {
		panic(err)
	}

	finetune := func(freeze bool, variant moc.Variant, kpec bool) (float64, float64) {
		// Rebuild the pre-trained state deterministically, then continue
		// on the fine-tuning corpus with fault injection.
		cfg := accuracyConfig(quick)
		cfg.Interval = 0
		pre, err := moc.NewSystem(cfg, moc.NewMemStore())
		if err != nil {
			panic(err)
		}
		if _, err := pre.RunTo(pretrainIters); err != nil {
			panic(err)
		}
		ft, err := pre.ForkOn(ftCorpus, moc.Config{
			Interval: 12, FreezeExperts: freeze, Variant: variant,
			KSnapshot: kIf(kpec, 1), KPersist: kIf(kpec, 1),
		})
		if err != nil {
			panic(err)
		}
		pre.Close()
		defer ft.Close()
		target := pretrainIters + ftIters
		plan := fault.At(pretrainIters + ftIters/2)
		if err := runWithFaults(ft, target, plan); err != nil {
			panic(err)
		}
		_, acc, err := ft.EvaluateOn(ftCorpus, samples)
		if err != nil {
			panic(err)
		}
		_, avg, err := ft.Downstream(128)
		if err != nil {
			panic(err)
		}
		return acc, avg
	}

	rows := []Table4Row{{Method: "Base", FinetuneAcc: baseFTAcc, DownstreamAvg: baseAvg}}
	for _, v := range []struct {
		name    string
		freeze  bool
		variant moc.Variant
		kpec    bool
	}{
		{"FT-w.o.E", true, moc.VariantFull, false},
		{"FT-Full", false, moc.VariantFull, false},
		{"FT-PEC", false, moc.VariantWO, true},
	} {
		acc, avg := finetune(v.freeze, v.variant, v.kpec)
		rows = append(rows, Table4Row{Method: v.name, FinetuneAcc: acc, DownstreamAvg: avg})
	}
	t := report.NewTable("Table 4: fine-tuning with a mid-run fault",
		"Method", "FT-domain acc", "Downstream avg")
	for _, r := range rows {
		t.Row(r.Method, report.Pct(r.FinetuneAcc), report.Pct(r.DownstreamAvg))
	}
	return rows, t.String()
}

func kIf(cond bool, k int) int {
	if cond {
		return k
	}
	return 0
}

// SelectionAblation compares sequential and load-aware selection on PLT,
// final loss, and selection cost (§3.2's trade-off discussion).
func SelectionAblation(quick bool) string {
	total := horizon(quick, 320)
	var b strings.Builder
	t := report.NewTable("Ablation: sequential vs load-aware selection",
		"Selection", "PLT", "Final val loss")
	for _, sel := range []moc.Selection{moc.SelectSequential, moc.SelectLoadAware} {
		cfg := accuracyConfig(quick)
		cfg.Interval = 8
		cfg.KSnapshot, cfg.KPersist = 1, 1
		cfg.Variant = moc.VariantWO
		cfg.Selection = sel
		s, err := moc.NewSystem(cfg, moc.NewMemStore())
		if err != nil {
			panic(err)
		}
		plan := fault.At(total / 2)
		if err := runWithFaults(s, total, plan); err != nil {
			panic(err)
		}
		loss, _, err := s.Evaluate(256)
		if err != nil {
			panic(err)
		}
		t.Row(string(sel), report.Pct(s.PLT()), fmt.Sprintf("%.4f", loss))
		s.Close()
	}
	b.WriteString(t.String())
	return b.String()
}
