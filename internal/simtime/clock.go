package simtime

import (
	"sync"
	"time"
)

// ManualClock is a hand-advanced clock: Now returns the same instant
// until Advance (or Set) moves it. Lease-expiry and TTL tests inject it
// (fleet.Config.Now = clock.Now) so expiry is driven deterministically
// instead of by sleeping — the difference between a lease test that is
// exact under -race and one that flakes when the runner stalls.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a clock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (backward for negative d).
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}
