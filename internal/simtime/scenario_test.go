package simtime

import (
	"testing"

	"moc/internal/cluster"
	"moc/internal/model"
	"moc/internal/perf"
)

func scenario(topo cluster.Topology) Scenario {
	return Scenario{W: perf.Workload{
		Model:       model.GPT350M16E(),
		Topo:        topo,
		GPU:         perf.A800(),
		Storage:     perf.DefaultStorage(),
		GlobalBatch: 256,
	}}
}

func TestFig11SnapshotShrinksWithK(t *testing.T) {
	s := scenario(cluster.Case1())
	prevSnap := -1.0
	for _, k := range []int{1, 2, 4, 8, 16} {
		b, err := s.Evaluate(ShardedMethod(k, false))
		if err != nil {
			t.Fatal(err)
		}
		if prevSnap >= 0 && b.Snapshot <= prevSnap {
			t.Fatalf("snapshot at K=%d (%.2fs) not > previous (%.2fs)", k, b.Snapshot, prevSnap)
		}
		if b.Persist <= 0 {
			t.Fatalf("persist duration zero at K=%d", k)
		}
		prevSnap = b.Snapshot
	}
}

func TestFig11FullyShardedBeatsBaseline(t *testing.T) {
	// Fig. 11: "even the full savings (K = 16) outperform the baseline"
	// because fully sharded checkpointing shrinks the bottleneck rank.
	for _, topo := range cluster.Cases() {
		s := scenario(topo)
		base, err := s.Evaluate(BaselineMethod())
		if err != nil {
			t.Fatal(err)
		}
		full, err := s.Evaluate(ShardedMethod(16, true))
		if err != nil {
			t.Fatal(err)
		}
		if full.Snapshot >= base.Snapshot {
			t.Errorf("%s: sharded full snapshot %.2fs not < baseline %.2fs",
				topo.Name, full.Snapshot, base.Snapshot)
		}
		if full.IterTime() >= base.IterTime() {
			t.Errorf("%s: sharded full iteration %.2fs not < baseline %.2fs",
				topo.Name, full.IterTime(), base.IterTime())
		}
	}
}

func TestFig12MoCAsyncReductions(t *testing.T) {
	// Fig. 12: MoC-Async reduces per-checkpoint overhead by ≥95% versus
	// the blocking baseline and speeds up checkpoint iterations by ≥3×.
	for _, topo := range cluster.Cases() {
		s := scenario(topo)
		base, err := s.Evaluate(BaselineMethod())
		if err != nil {
			t.Fatal(err)
		}
		moc, err := s.Evaluate(MoCAsyncMethod(4, 1))
		if err != nil {
			t.Fatal(err)
		}
		if base.OSave() <= 0 {
			t.Fatalf("%s: baseline O_save should be positive", topo.Name)
		}
		reduction := 1 - moc.OSave()/base.OSave()
		if reduction < 0.95 {
			t.Errorf("%s: O_save reduction %.3f, want ≥ 0.95", topo.Name, reduction)
		}
		speedup := base.IterTime() / moc.IterTime()
		if speedup < 2.5 || speedup > 8 {
			t.Errorf("%s: checkpoint-iteration speedup %.2f×, want ~3–5×", topo.Name, speedup)
		}
	}
}

func TestFig12MoCAsyncBeatsBaseAsync(t *testing.T) {
	for _, topo := range cluster.Cases() {
		s := scenario(topo)
		ba, err := s.Evaluate(BaseAsyncMethod())
		if err != nil {
			t.Fatal(err)
		}
		moc, err := s.Evaluate(MoCAsyncMethod(4, 1))
		if err != nil {
			t.Fatal(err)
		}
		if moc.IterTime() > ba.IterTime() {
			t.Errorf("%s: MoC-Async %.2fs slower than Base-Async %.2fs",
				topo.Name, moc.IterTime(), ba.IterTime())
		}
		if moc.MinInterval() > ba.MinInterval() {
			t.Errorf("%s: MoC min interval %.2f should be ≤ Base-Async %.2f",
				topo.Name, moc.MinInterval(), ba.MinInterval())
		}
	}
}

func TestPersistPECShrinksPersistOnly(t *testing.T) {
	s := scenario(cluster.Case2())
	wide, err := s.Evaluate(MoCAsyncMethod(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.Evaluate(MoCAsyncMethod(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Snapshot != wide.Snapshot {
		t.Fatal("K_persist must not change the snapshot volume")
	}
	if narrow.Persist >= wide.Persist {
		t.Fatal("smaller K_persist must shrink the persist duration")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	s := scenario(cluster.Case3())
	_, res, err := s.Simulate(MoCAsyncMethod(2, 1), 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Persisted == 0 {
		t.Fatal("no checkpoints persisted in end-to-end simulation")
	}
	b, resBase, err := s.Simulate(BaselineMethod(), 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime >= resBase.TotalTime {
		t.Fatalf("MoC-Async total %.1fs not faster than baseline %.1fs (breakdown %+v)",
			res.TotalTime, resBase.TotalTime, b)
	}
}

func TestMethodLabels(t *testing.T) {
	if BaselineMethod().Name != "Baseline" || !BaselineMethod().Blocking {
		t.Fatal("baseline method malformed")
	}
	if BaseAsyncMethod().Blocking {
		t.Fatal("Base-Async must be asynchronous")
	}
	if MoCAsyncMethod(4, 1).KSnapshot != 4 {
		t.Fatal("MoC method fan-outs not propagated")
	}
	if ShardedMethod(8, true).Name != "K=8" {
		t.Fatal("sharded method label")
	}
}

func TestEvaluateErrorsOnBadWorkload(t *testing.T) {
	s := Scenario{}
	if _, err := s.Evaluate(BaselineMethod()); err == nil {
		t.Fatal("empty workload accepted")
	}
}
