package simtime

import (
	"math"
	"testing"

	"moc/internal/core"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{FB: 0, Update: 1, Interval: 1, Iterations: 1, Buffers: 3},
		{FB: 1, Update: 1, Interval: 0, Iterations: 1, Buffers: 3},
		{FB: 1, Update: 1, Interval: 1, Iterations: 0, Buffers: 3},
		{FB: 1, Update: 1, Interval: 1, Iterations: 1, Buffers: 1},
		{FB: 1, Update: -1, Interval: 1, Iterations: 1, Buffers: 3},
		{FB: 1, Update: 1, Snapshot: -1, Interval: 1, Iterations: 1, Buffers: 3},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBlockingPaysFullCost(t *testing.T) {
	res := run(t, Config{FB: 2, Update: 0.5, Snapshot: 3, Persist: 4,
		Interval: 10, Iterations: 100, Buffers: 3, Blocking: true})
	// 100 iterations × 2.5s + 10 checkpoints × 7s = 320s.
	if math.Abs(res.TotalTime-320) > 1e-9 {
		t.Fatalf("blocking total = %v, want 320", res.TotalTime)
	}
	if res.OSavePerCkpt != 7 {
		t.Fatalf("blocking O_save = %v, want 7", res.OSavePerCkpt)
	}
	if res.Persisted != 10 || res.Skipped != 0 {
		t.Fatalf("blocking persisted %d skipped %d", res.Persisted, res.Skipped)
	}
}

func TestAsyncFullyOverlappedHasZeroOverhead(t *testing.T) {
	res := run(t, Config{FB: 2, Update: 0.5, Snapshot: 1.5, Persist: 4,
		Interval: 10, Iterations: 100, Buffers: 3})
	if res.StallTime != 0 || res.Stalls != 0 {
		t.Fatalf("overlappable snapshot stalled: %+v", res)
	}
	if math.Abs(res.TotalTime-250) > 1e-9 {
		t.Fatalf("async total = %v, want plain 250", res.TotalTime)
	}
	if res.OSavePerCkpt != 0 {
		t.Fatalf("async O_save = %v, want 0", res.OSavePerCkpt)
	}
}

func TestAsyncStallMatchesEq10(t *testing.T) {
	// Snapshot 3 > FB 2 ⇒ each checkpoint stalls the next update by 1s.
	// The final trigger (iteration 100) has no next iteration to stall,
	// so 9 of the 10 checkpoints stall.
	res := run(t, Config{FB: 2, Update: 0.5, Snapshot: 3, Persist: 1,
		Interval: 10, Iterations: 100, Buffers: 3})
	if res.Stalls != 9 {
		t.Fatalf("stalls = %d, want 9", res.Stalls)
	}
	wantStall := core.SaveOverhead(3, 2) * 9
	if math.Abs(res.StallTime-wantStall) > 1e-9 {
		t.Fatalf("stall time = %v, want %v", res.StallTime, wantStall)
	}
	if math.Abs(res.OSavePerCkpt-0.9) > 1e-9 {
		t.Fatalf("O_save = %v, want 0.9 (Eq. 10 averaged over triggers)", res.OSavePerCkpt)
	}
}

func TestAsyncBeatsBlocking(t *testing.T) {
	base := Config{FB: 2, Update: 0.5, Snapshot: 3, Persist: 4,
		Interval: 5, Iterations: 200, Buffers: 3}
	blocking := base
	blocking.Blocking = true
	a := run(t, base)
	b := run(t, blocking)
	if a.TotalTime >= b.TotalTime {
		t.Fatalf("async %v not faster than blocking %v", a.TotalTime, b.TotalTime)
	}
	// Fig. 12: overhead reduction should be large.
	if a.OSavePerCkpt > 0.2*b.OSavePerCkpt {
		t.Fatalf("async O_save %v vs blocking %v: reduction too small", a.OSavePerCkpt, b.OSavePerCkpt)
	}
}

func TestSlowPersistSkipsTriggers(t *testing.T) {
	// Persist takes 25s; iterations take 2.5s; triggering every iteration
	// must skip most checkpoints because buffers drain slowly, bounding
	// the achieved cadence near the persist duration.
	res := run(t, Config{FB: 2, Update: 0.5, Snapshot: 1, Persist: 25,
		Interval: 1, Iterations: 200, Buffers: 3})
	if res.Skipped == 0 {
		t.Fatal("expected skipped triggers with a slow persist channel")
	}
	if res.Persisted == 0 {
		t.Fatal("some checkpoints must still complete")
	}
	// Achieved interval ≈ persist / iteration = 10; allow slack for
	// pipeline fill.
	if res.EffectiveInterval < 5 || res.EffectiveInterval > 15 {
		t.Fatalf("effective interval = %v, want ~10", res.EffectiveInterval)
	}
}

func TestTripleBufferOutpacesDoubleBuffer(t *testing.T) {
	// With persist ≈ 2 iterations, a third buffer lets a new snapshot
	// start while one buffer persists and one holds the recovery copy.
	base := Config{FB: 2, Update: 0.5, Snapshot: 1, Persist: 5,
		Interval: 2, Iterations: 400}
	three := base
	three.Buffers = 3
	two := base
	two.Buffers = 2
	r3 := run(t, three)
	r2 := run(t, two)
	if r3.Persisted <= r2.Persisted {
		t.Fatalf("triple buffer persisted %d ≤ double buffer %d", r3.Persisted, r2.Persisted)
	}
}

func TestZeroCostCheckpointNoop(t *testing.T) {
	res := run(t, Config{FB: 1, Update: 0, Snapshot: 0, Persist: 0,
		Interval: 1, Iterations: 50, Buffers: 3})
	if res.TotalTime != 50 || res.StallTime != 0 {
		t.Fatalf("zero-cost checkpoints perturbed the run: %+v", res)
	}
	if res.Persisted != 50 {
		t.Fatalf("persisted %d, want 50", res.Persisted)
	}
}

func TestEffectiveIntervalMatchesTriggers(t *testing.T) {
	res := run(t, Config{FB: 2, Update: 0.5, Snapshot: 1, Persist: 1,
		Interval: 4, Iterations: 100, Buffers: 3})
	if res.Triggered != 25 {
		t.Fatalf("triggered %d, want 25", res.Triggered)
	}
	if math.Abs(res.EffectiveInterval-4) > 0.2 {
		t.Fatalf("effective interval %v, want ~4", res.EffectiveInterval)
	}
}
