package simtime

import (
	"fmt"

	"moc/internal/core"
	"moc/internal/perf"
)

// Method names one of the checkpointing systems compared in Figs. 11–13.
type Method struct {
	// Name is the display label ("Baseline", "Base-Async", "MoC-Async").
	Name string
	// Blocking selects the synchronous save path.
	Blocking bool
	// Strategy is the sharding strategy used to place the write load.
	Strategy core.Strategy
	// KSnapshot and KPersist are the two-level PEC fan-outs; 0 means the
	// full expert set at that level.
	KSnapshot, KPersist int
}

// BaselineMethod is the Megatron-DeepSpeed blocking full checkpoint.
func BaselineMethod() Method {
	return Method{Name: "Baseline", Blocking: true, Strategy: core.StrategyBaseline}
}

// BaseAsyncMethod is asynchronous checkpointing without PEC or full
// sharding ("Base-Async" in Fig. 12).
func BaseAsyncMethod() Method {
	return Method{Name: "Base-Async", Strategy: core.StrategyBaseline}
}

// MoCAsyncMethod is the fully optimized MoC-System pipeline: asynchronous,
// fully sharded (EE+AN), with two-level PEC fan-outs.
func MoCAsyncMethod(kSnapshot, kPersist int) Method {
	return Method{Name: "MoC-Async", Strategy: core.StrategyEEAN,
		KSnapshot: kSnapshot, KPersist: kPersist}
}

// ShardedMethod is fully sharded checkpointing with a single-level PEC
// fan-out of k (k = N reproduces the "Full, fully sharded" bars of
// Fig. 11); blocking or async per the flag.
func ShardedMethod(k int, blocking bool) Method {
	return Method{Name: fmt.Sprintf("K=%d", k), Blocking: blocking,
		Strategy: core.StrategyEEAN, KSnapshot: k, KPersist: k}
}

// Breakdown is the per-iteration timing decomposition of Fig. 11.
type Breakdown struct {
	Method        Method
	FB            float64 // forward + backward (the snapshot overlap window)
	Update        float64
	Snapshot      float64 // bottleneck-rank GPU→CPU duration
	Persist       float64 // bottleneck-rank CPU→storage duration
	SnapshotBytes int64   // bottleneck-rank snapshot volume
	PersistBytes  int64   // bottleneck-rank persist volume
	TotalPersist  int64   // cluster-wide persisted bytes (Fig. 13f)
}

// asyncTriggerCost is the fixed per-checkpoint cost of launching the
// asynchronous pipeline (allocating/pinning buffers, spawning the copy):
// the small residual that keeps the paper's measured O_save reduction at
// 98.2–98.9% rather than 100%.
const asyncTriggerCost = 0.05

// IterTime returns the duration of a training iteration that performs a
// checkpoint under this method: blocking pays snapshot+persist inline;
// async pays the trigger cost plus the non-overlapped snapshot residue
// (Eq. 10).
func (b Breakdown) IterTime() float64 {
	base := b.FB + b.Update
	if b.Method.Blocking {
		return base + b.Snapshot + b.Persist
	}
	return base + b.OSave()
}

// OSave returns the per-checkpoint overhead beyond plain training time.
func (b Breakdown) OSave() float64 {
	if b.Method.Blocking {
		return b.Snapshot + b.Persist
	}
	return asyncTriggerCost + core.SaveOverhead(b.Snapshot, b.FB)
}

// MinInterval returns the lower bound on the checkpoint interval in
// iterations imposed by the snapshot and persist channel occupancy
// (§6.2.3: MoC-Async halves I_ckpt versus Base-Async).
func (b Breakdown) MinInterval() float64 {
	iter := b.FB + b.Update
	if iter <= 0 {
		return 0
	}
	occ := b.Snapshot
	if b.Persist > occ {
		occ = b.Persist
	}
	iv := occ / iter
	if iv < 1 {
		return 1
	}
	return iv
}

// Scenario evaluates methods against one workload.
type Scenario struct {
	W perf.Workload
}

// Evaluate computes the timing breakdown of one method on the scenario's
// workload by planning the checkpoint shards (internal/core) and costing
// them (internal/perf).
func (s Scenario) Evaluate(m Method) (Breakdown, error) {
	if err := s.W.Validate(); err != nil {
		return Breakdown{}, err
	}
	cfg := s.W.Model
	nmoe := cfg.NumMoELayers()

	snapSel, persistSel := (*core.Selection)(nil), (*core.Selection)(nil)
	if m.KSnapshot > 0 && m.KSnapshot < cfg.NumExperts && nmoe > 0 {
		sel := core.NewSequentialSelector(nmoe, cfg.NumExperts)
		snapSel = sel.Select(0, m.KSnapshot)
	}
	if m.KPersist > 0 && nmoe > 0 {
		if snapSel != nil {
			persistSel = snapSel.Subset(m.KPersist)
		} else if m.KPersist < cfg.NumExperts {
			sel := core.NewSequentialSelector(nmoe, cfg.NumExperts)
			persistSel = sel.Select(0, m.KPersist)
		}
	} else {
		persistSel = snapSel
	}

	snapPlan, err := core.PlanCheckpoint(s.W.Topo, cfg, snapSel, m.Strategy)
	if err != nil {
		return Breakdown{}, err
	}
	persistPlan, err := core.PlanCheckpoint(s.W.Topo, cfg, persistSel, m.Strategy)
	if err != nil {
		return Breakdown{}, err
	}
	snapBytes, _ := snapPlan.Bottleneck()
	persistBytes, _ := persistPlan.Bottleneck()

	return Breakdown{
		Method:        m,
		FB:            s.W.FBTime(),
		Update:        s.W.UpdateTime(),
		Snapshot:      s.W.SnapshotTime(snapBytes),
		Persist:       s.W.PersistTime(persistBytes),
		SnapshotBytes: snapBytes,
		PersistBytes:  persistBytes,
		TotalPersist:  persistPlan.TotalBytes(),
	}, nil
}

// Simulate runs the discrete-event simulator for the method over the given
// horizon and trigger interval, using the breakdown's phase durations.
func (s Scenario) Simulate(m Method, interval, iterations int) (Breakdown, Result, error) {
	b, err := s.Evaluate(m)
	if err != nil {
		return Breakdown{}, Result{}, err
	}
	res, err := Run(Config{
		FB: b.FB, Update: b.Update,
		Snapshot: b.Snapshot, Persist: b.Persist,
		Interval: interval, Iterations: iterations,
		Buffers: 3, Blocking: m.Blocking,
	})
	return b, res, err
}
