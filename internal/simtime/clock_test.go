package simtime

import (
	"testing"
	"time"
)

func TestManualClockAdvanceAndSet(t *testing.T) {
	start := time.Unix(500, 0)
	c := NewManualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	if again := c.Now(); !again.Equal(start) {
		t.Fatal("clock moved without Advance")
	}
	c.Advance(90 * time.Second)
	if want := start.Add(90 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
	c.Advance(-30 * time.Second)
	if want := start.Add(60 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("Now after negative advance = %v, want %v", c.Now(), want)
	}
	c.Set(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now after Set = %v, want %v", c.Now(), start)
	}
}

func TestManualClockConcurrentReads(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = c.Now()
	}
	<-done
	if got := c.Now(); !got.Equal(time.Unix(1, 0)) {
		t.Fatalf("Now = %v after 1000ms of advances", got)
	}
}
