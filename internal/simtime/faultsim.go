package simtime

import (
	"fmt"

	"moc/internal/fault"
)

// FaultConfig extends the pipeline simulation with fault injection,
// measuring the total fault-tolerance overhead O_ckpt of §2.3 (Eq. 3):
// per-checkpoint save overhead during normal training, plus restart cost
// and lost progress whenever a fault strikes. It is the measured
// counterpart of the closed-form model in internal/core (Eqs. 12–13).
type FaultConfig struct {
	Config
	// Restart is O_restart: the constant restart cost per fault, in
	// seconds (process restart + checkpoint read-back).
	Restart float64
	// Faults schedules faults by iteration index.
	Faults *fault.Plan

	// Replicas is the persist-backend replica count (default 1): how
	// many independent backends the replicated checkpoint store writes
	// through. Backend losses only endanger checkpoints once every
	// replica is gone.
	Replicas int
	// BackendFaults schedules persist-backend losses by iteration. Each
	// fault permanently removes one replica. When the last replica is
	// lost, every persisted checkpoint is lost with it: a fresh empty
	// backend is provisioned (costing Restart), and a subsequent node
	// fault rolls training back to iteration 0.
	BackendFaults *fault.Plan
}

// FaultResult extends Result with fault accounting.
type FaultResult struct {
	Result
	// Faults is the number of injected faults.
	Faults int
	// LostIterations counts iterations re-executed after rollbacks.
	LostIterations int
	// RestartTime is the cumulative restart cost.
	RestartTime float64
	// OverheadTotal is the measured O_ckpt: TotalTime minus the
	// fault-free, checkpoint-free training time of the productive
	// iterations.
	OverheadTotal float64
	// BackendFaults counts persist-backend losses; CheckpointsLost
	// counts persisted checkpoints destroyed because the last replica
	// was lost.
	BackendFaults   int
	CheckpointsLost int
}

// RunWithFaults simulates training with checkpointing and faults. On a
// fault, the run rolls back to the last fully persisted checkpoint
// (re-executing the lost iterations), pays the restart cost, and clears
// the in-flight pipeline — snapshots in CPU memory die with the node.
func RunWithFaults(cfg FaultConfig) (FaultResult, error) {
	if err := cfg.Validate(); err != nil {
		return FaultResult{}, err
	}
	if cfg.Restart < 0 {
		return FaultResult{}, fmt.Errorf("simtime: negative restart cost")
	}
	if cfg.Faults == nil {
		cfg.Faults = fault.None()
	}
	if cfg.BackendFaults == nil {
		cfg.BackendFaults = fault.None()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas < 0 {
		return FaultResult{}, fmt.Errorf("simtime: negative replica count")
	}
	plain := cfg.FB + cfg.Update
	var res FaultResult

	// State of the async pipeline (mirrors Run; faults reset it).
	t := 0.0
	snapEnd := -1.0
	persistQueue := 0
	persistBusyUntil := 0.0
	persistEndTimes := []float64{}
	recoveryHeld := false
	lastPersistedIter := -1 // iteration of the newest complete checkpoint
	pendingIter := -1       // iteration the in-flight snapshot belongs to
	queuedIters := []int{}

	drain := func(now float64) {
		if snapEnd >= 0 && snapEnd <= now {
			start := snapEnd
			if persistBusyUntil > start {
				start = persistBusyUntil
			}
			persistBusyUntil = start + cfg.Persist
			persistEndTimes = append(persistEndTimes, persistBusyUntil)
			queuedIters = append(queuedIters, pendingIter)
			persistQueue++
			snapEnd = -1
			pendingIter = -1
		}
		for len(persistEndTimes) > 0 && persistEndTimes[0] <= now {
			persistEndTimes = persistEndTimes[1:]
			lastPersistedIter = queuedIters[0]
			queuedIters = queuedIters[1:]
			persistQueue--
			res.Persisted++
			recoveryHeld = true
		}
	}
	buffersInUse := func() int {
		n := persistQueue
		if snapEnd >= 0 {
			n++
		}
		if recoveryHeld {
			n++
		}
		return n
	}

	fired := make(map[int]bool)  // each scheduled fault strikes once
	bfired := make(map[int]bool) // likewise for backend faults
	healthy := cfg.Replicas
	wiped := false      // the last replica was lost at least once
	persistedWiped := 0 // persisted checkpoints destroyed so far
	it := 1
	for it <= cfg.Iterations {
		t += cfg.FB
		drain(t)
		if !cfg.Blocking && snapEnd > t {
			stall := snapEnd - t
			res.Stalls++
			res.StallTime += stall
			res.OSavePerCkpt += stall
			t = snapEnd
			drain(t)
		}
		t += cfg.Update
		drain(t)
		if it%cfg.Interval == 0 {
			res.Triggered++
			if cfg.Blocking {
				cost := cfg.Snapshot + cfg.Persist
				t += cost
				res.OSavePerCkpt += cost
				res.Persisted++
				lastPersistedIter = it
			} else if snapEnd < 0 && buffersInUse() < cfg.Buffers {
				snapEnd = t + cfg.Snapshot
				pendingIter = it
			} else {
				res.Skipped++
			}
		}
		if cfg.BackendFaults.IsFault(it) && !bfired[it] {
			bfired[it] = true
			res.BackendFaults++
			if healthy > 0 {
				healthy--
			}
			if healthy == 0 {
				// The last replica is gone: every persisted checkpoint
				// dies with it, along with the in-flight persist
				// pipeline. A fresh empty backend is provisioned at
				// restart cost; training state in GPU/CPU memory is
				// untouched, so training itself continues.
				wiped = true
				res.CheckpointsLost += res.Persisted - persistedWiped
				persistedWiped = res.Persisted
				lastPersistedIter = -1
				persistQueue = 0
				persistEndTimes = persistEndTimes[:0]
				queuedIters = queuedIters[:0]
				res.RestartTime += cfg.Restart
				t += cfg.Restart
				persistBusyUntil = t
				healthy = 1
			}
		}
		if cfg.Faults.IsFault(it) && !fired[it] && (lastPersistedIter >= 0 || wiped) {
			fired[it] = true
			res.Faults++
			res.RestartTime += cfg.Restart
			t += cfg.Restart
			// With every replica of every checkpoint destroyed, the node
			// fault rolls training back to iteration 0.
			rollTo := lastPersistedIter
			if rollTo < 0 {
				rollTo = 0
			}
			res.LostIterations += it - rollTo
			it = rollTo
			// The node's in-flight pipeline dies with it; the persisted
			// checkpoint (if any replica survives) remains.
			snapEnd = -1
			pendingIter = -1
			persistQueue = 0
			persistEndTimes = persistEndTimes[:0]
			queuedIters = queuedIters[:0]
			persistBusyUntil = t
		}
		it++
	}
	res.TotalTime = t
	res.OverheadTotal = t - float64(cfg.Iterations)*plain
	finalize(&res.Result, cfg.Config, 0)
	return res, nil
}
