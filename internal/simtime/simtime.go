// Package simtime simulates the checkpointing timeline of distributed MoE
// training at iteration granularity (Figs. 3 and 9 of the paper). It
// models:
//
//   - blocking checkpointing (training halts for snapshot + persist);
//   - asynchronous two-phase checkpointing, where the GPU→CPU snapshot
//     overlaps the next iteration's forward+backward window and stalls the
//     weight update only if it outlasts it (Eq. 10), while the CPU→storage
//     persist proceeds fully in the background;
//   - the triple-buffer state machine (§5.2): snapshot, persist, and
//     recovery buffers; a checkpoint trigger is skipped when no buffer is
//     free, which bounds the achievable checkpoint cadence.
//
// The simulator is deterministic and purely computational; it is validated
// against the closed-form overhead model in internal/core.
package simtime

import (
	"fmt"
	"math"
)

// Config describes one simulated training run.
type Config struct {
	// FB and Update are the per-iteration phase durations in seconds.
	FB, Update float64
	// Snapshot and Persist are the per-checkpoint bottleneck-rank phase
	// durations in seconds.
	Snapshot, Persist float64
	// Interval is the checkpoint trigger interval in iterations (≥ 1).
	Interval int
	// Iterations is the number of training iterations to simulate.
	Iterations int
	// Buffers is the number of host-memory checkpoint buffers
	// (the paper uses 3; must be ≥ 2).
	Buffers int
	// Blocking selects the synchronous baseline instead of the
	// asynchronous two-phase pipeline.
	Blocking bool
}

// Validate checks simulability.
func (c Config) Validate() error {
	if c.FB <= 0 || c.Update < 0 {
		return fmt.Errorf("simtime: FB must be positive, Update non-negative")
	}
	if c.Snapshot < 0 || c.Persist < 0 {
		return fmt.Errorf("simtime: phase durations must be non-negative")
	}
	if c.Interval <= 0 || c.Iterations <= 0 {
		return fmt.Errorf("simtime: interval and iterations must be positive")
	}
	if !c.Blocking && c.Buffers < 2 {
		return fmt.Errorf("simtime: async pipeline needs at least 2 buffers")
	}
	return nil
}

// Result aggregates the simulated run.
type Result struct {
	// TotalTime is the simulated wall-clock duration.
	TotalTime float64
	// AvgIterTime is TotalTime / Iterations.
	AvgIterTime float64
	// CkptIterTime is the average duration of an iteration in which a
	// checkpoint is triggered (the Fig. 12 "training iteration with
	// checkpointing" metric, with the stall attributed to it).
	CkptIterTime float64
	// OSavePerCkpt is the average per-checkpoint overhead beyond plain
	// training time (Eq. 10 for async; snapshot+persist for blocking).
	OSavePerCkpt float64
	// Stalls counts iterations delayed by an unfinished snapshot.
	Stalls int
	// StallTime is the cumulative checkpoint-stall duration.
	StallTime float64
	// Triggered, Skipped, Persisted count checkpoint attempts, triggers
	// dropped for lack of a free buffer, and fully persisted checkpoints.
	Triggered, Skipped, Persisted int
	// EffectiveInterval is Iterations / Persisted: the achieved
	// checkpoint cadence in iterations (∞ if nothing persisted).
	EffectiveInterval float64
}

// Run simulates the configured training run.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	plain := cfg.FB + cfg.Update

	if cfg.Blocking {
		// Synchronous baseline: the trigger iteration pays the full
		// snapshot + persist cost inline.
		t := 0.0
		var ckptTime float64
		for i := 1; i <= cfg.Iterations; i++ {
			t += plain
			if i%cfg.Interval == 0 {
				cost := cfg.Snapshot + cfg.Persist
				t += cost
				res.Triggered++
				res.Persisted++
				ckptTime += plain + cost
				res.OSavePerCkpt += cost
			}
		}
		res.TotalTime = t
		finalize(&res, cfg, ckptTime)
		return res, nil
	}

	// Asynchronous two-phase pipeline with a buffer pool.
	t := 0.0
	snapEnd := -1.0      // completion time of the in-flight snapshot, <0 if none
	var persistQueue int // snapshots waiting for the persist channel
	persistBusyUntil := 0.0
	persistEndTimes := []float64{}
	recoveryHeld := false // one buffer pinned as the latest recovery checkpoint
	var ckptTime float64

	buffersInUse := func() int {
		n := persistQueue
		if snapEnd >= 0 {
			n++
		}
		if recoveryHeld {
			n++
		}
		return n
	}
	// drain moves completed snapshots to the persist channel and retires
	// completed persists as of time now.
	drain := func(now float64) {
		if snapEnd >= 0 && snapEnd <= now {
			start := snapEnd
			if persistBusyUntil > start {
				start = persistBusyUntil
			}
			persistBusyUntil = start + cfg.Persist
			persistEndTimes = append(persistEndTimes, persistBusyUntil)
			persistQueue++
			snapEnd = -1
		}
		for len(persistEndTimes) > 0 && persistEndTimes[0] <= now {
			persistEndTimes = persistEndTimes[1:]
			persistQueue--
			res.Persisted++
			// The newly persisted buffer becomes the recovery buffer;
			// the previous recovery buffer (if any) is freed. Net
			// effect: recoveryHeld stays true, pool usage decreases
			// by the persist slot.
			recoveryHeld = true
		}
	}

	for i := 1; i <= cfg.Iterations; i++ {
		iterStart := t
		// Forward + backward; an in-flight snapshot overlaps this window.
		t += cfg.FB
		drain(t)
		// The weight update must wait for the snapshot (Fig. 3).
		if snapEnd > t {
			stall := snapEnd - t
			res.Stalls++
			res.StallTime += stall
			res.OSavePerCkpt += stall
			t = snapEnd
			drain(t)
		}
		t += cfg.Update
		drain(t)
		if i%cfg.Interval == 0 {
			res.Triggered++
			if snapEnd < 0 && buffersInUse() < cfg.Buffers {
				snapEnd = t + cfg.Snapshot
			} else {
				res.Skipped++
			}
			ckptTime += t - iterStart
			// The stall induced by this snapshot lands on the next
			// iteration; attribute it there via OSavePerCkpt (already
			// accumulated when it happens) and add the projected stall
			// to the checkpoint-iteration metric for reporting.
			if snapEnd >= 0 {
				projected := cfg.Snapshot - cfg.FB
				if projected > 0 {
					ckptTime += projected
				}
			}
		}
	}
	// Let in-flight work finish in the background: it does not extend
	// training time, but the final snapshot/persist still complete and
	// count toward the persisted-checkpoint tally.
	res.TotalTime = t
	drain(math.Inf(1))
	finalize(&res, cfg, ckptTime)
	return res, nil
}

func finalize(res *Result, cfg Config, ckptTime float64) {
	res.AvgIterTime = res.TotalTime / float64(cfg.Iterations)
	if res.Triggered > 0 {
		res.CkptIterTime = ckptTime / float64(res.Triggered)
		res.OSavePerCkpt /= float64(res.Triggered)
	}
	if res.Persisted > 0 {
		res.EffectiveInterval = float64(cfg.Iterations) / float64(res.Persisted)
	} else {
		res.EffectiveInterval = float64(cfg.Iterations)
	}
}
