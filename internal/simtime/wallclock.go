package simtime

import "time"

// This file is the module's only sanctioned door to the wall clock.
//
// The simulator proper is deterministic and purely computational; real
// time still leaks into the system in three legitimate ways — cost
// models that genuinely sleep to emulate modeled transfer time,
// operator-facing probes that measure real elapsed time, and tests
// that poll for a background daemon's effect. Those uses are funneled
// through the helpers below so the `mocvet walltime` analyzer can ban
// raw time.Now/time.Sleep/time.After everywhere else in the module:
// a wall-clock read that matters is either here, in a Benchmark, or
// carries a //moc:allow walltime directive explaining itself.

// WallNow reads the real clock. Use it (not time.Now) for operator
// probes and measurements; simulated timelines never consult it.
func WallNow() time.Time { return time.Now() }

// WallSince reports real elapsed time since t.
func WallSince(t time.Time) time.Duration { return time.Since(t) }

// SleepWall blocks for d of real time. Cost models use it to convert
// modeled seconds into actual backpressure (remote latency, MemStore
// bandwidth debt).
func SleepWall(d time.Duration) { time.Sleep(d) }

// Eventually polls cond every step of real time until it returns true
// or timeout elapses, reporting whether the condition was met. It is
// the module's one blessed busy-wait: tests and examples that wait for
// a background daemon (scrub passes, cache fills, goroutine exits) use
// it instead of hand-rolled deadline loops, so polling cadence and
// deadline handling live in one audited place.
//
// cond is always evaluated at least once, and once more after the
// final sleep, so a condition that becomes true exactly at the
// deadline is not missed.
func Eventually(timeout, step time.Duration, cond func() bool) bool {
	if cond() {
		return true
	}
	if step <= 0 {
		step = time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(step)
		if cond() {
			return true
		}
	}
	return false
}
