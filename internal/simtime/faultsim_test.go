package simtime

import (
	"math"
	"testing"

	"moc/internal/core"
	"moc/internal/fault"
)

func TestFaultSimNoFaultsMatchesRun(t *testing.T) {
	base := Config{FB: 2, Update: 0.5, Snapshot: 1.5, Persist: 3,
		Interval: 5, Iterations: 200, Buffers: 3}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withF, err := RunWithFaults(FaultConfig{Config: base, Restart: 60})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.TotalTime-withF.TotalTime) > 1e-9 {
		t.Fatalf("fault-free totals differ: %v vs %v", plain.TotalTime, withF.TotalTime)
	}
	if withF.Faults != 0 || withF.LostIterations != 0 {
		t.Fatalf("phantom faults: %+v", withF)
	}
}

func TestFaultSimRollbackAccounting(t *testing.T) {
	// Blocking checkpoints every 10 iterations; fault after iteration 25
	// rolls back to 20 (5 lost iterations) and pays the restart cost.
	cfg := FaultConfig{
		Config: Config{FB: 1, Update: 0, Snapshot: 1, Persist: 1,
			Interval: 10, Iterations: 100, Buffers: 3, Blocking: true},
		Restart: 30,
		Faults:  fault.At(25),
	}
	res, err := RunWithFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 1 || res.LostIterations != 5 {
		t.Fatalf("fault accounting: %+v", res)
	}
	if res.RestartTime != 30 {
		t.Fatalf("restart time %v", res.RestartTime)
	}
	// Total = 100 productive + 5 re-executed + 30 restart + ~12 ckpts × 2s.
	want := 100.0 + 5 + 30 + 2*float64(res.Persisted)
	if math.Abs(res.TotalTime-want) > 1e-9 {
		t.Fatalf("total %v, want %v (persisted %d)", res.TotalTime, want, res.Persisted)
	}
	if math.Abs(res.OverheadTotal-(res.TotalTime-100)) > 1e-9 {
		t.Fatalf("overhead %v inconsistent", res.OverheadTotal)
	}
}

func TestFaultSimAsyncLosesInFlightWork(t *testing.T) {
	// Async: the round-20 checkpoint's persist (ending ~t=25.5) has not
	// completed when the fault strikes after iteration 25, so recovery
	// must fall back to round 10 — in-flight work dies with the node.
	cfg := FaultConfig{
		Config: Config{FB: 1, Update: 0, Snapshot: 0.5, Persist: 5,
			Interval: 10, Iterations: 40, Buffers: 3},
		Restart: 10,
		Faults:  fault.At(25),
	}
	res, err := RunWithFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 1 {
		t.Fatalf("faults %d", res.Faults)
	}
	if res.LostIterations != 15 {
		t.Fatalf("lost %d iterations, want 15 (rollback past the in-flight persist)", res.LostIterations)
	}
}

func TestFaultSimSkipsFaultWithoutCheckpoint(t *testing.T) {
	// No checkpoint can complete before the fault (persist takes longer
	// than the whole run): the fault is unrecoverable in this model and
	// is skipped rather than looping forever.
	cfg := FaultConfig{
		Config: Config{FB: 1, Update: 0, Snapshot: 0.5, Persist: 1000,
			Interval: 10, Iterations: 40, Buffers: 3},
		Restart: 10,
		Faults:  fault.At(25),
	}
	res, err := RunWithFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 || res.LostIterations != 0 {
		t.Fatalf("unrecoverable fault fired: %+v", res)
	}
}

func TestFaultSimMoCBeatsFullUnderFaults(t *testing.T) {
	// The end-to-end claim (§6.2.5): with the same fault schedule, the
	// MoC configuration (small O_save, short interval) accumulates less
	// total overhead than blocking full checkpointing at a long interval.
	faults := fault.Poisson(0.002, 2000, 5)
	if faults.Count() == 0 {
		t.Fatal("test needs faults")
	}
	full := FaultConfig{
		Config: Config{FB: 2, Update: 0.3, Snapshot: 3.4, Persist: 4.2,
			Interval: 50, Iterations: 2000, Buffers: 3, Blocking: true},
		Restart: 120, Faults: faults,
	}
	mocCfg := FaultConfig{
		Config: Config{FB: 2, Update: 0.3, Snapshot: 0.7, Persist: 0.9,
			Interval: 5, Iterations: 2000, Buffers: 3},
		Restart: 120, Faults: faults,
	}
	fr, err := RunWithFaults(full)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunWithFaults(mocCfg)
	if err != nil {
		t.Fatal(err)
	}
	if mr.OverheadTotal >= fr.OverheadTotal {
		t.Fatalf("MoC overhead %v not below full %v", mr.OverheadTotal, fr.OverheadTotal)
	}
	if mr.LostIterations >= fr.LostIterations {
		t.Fatalf("MoC lost %d iterations, full %d — shorter interval should lose less",
			mr.LostIterations, fr.LostIterations)
	}
}

func TestFaultSimMatchesClosedFormModel(t *testing.T) {
	// The measured overhead should track Eq. 13 within a modest factor
	// for a blocking configuration (where the model is exact up to the
	// randomness of fault positions).
	const (
		iters    = 5000
		interval = 25
		lambda   = 0.001
	)
	faults := fault.Poisson(lambda, iters, 4)
	cfg := FaultConfig{
		Config: Config{FB: 2, Update: 0.5, Snapshot: 2, Persist: 3,
			Interval: interval, Iterations: iters, Buffers: 3, Blocking: true},
		Restart: 100, Faults: faults,
	}
	res, err := RunWithFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := core.OverheadParams{
		OSave: 5, ORestart: 100, IterTime: 2.5,
		Lambda: float64(faults.Count()) / iters, ITotal: iters,
	}
	predicted := model.TotalOverhead(interval)
	ratio := res.OverheadTotal / predicted
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("measured overhead %v vs Eq.13 %v (ratio %.2f)", res.OverheadTotal, predicted, ratio)
	}
}

func TestFaultSimValidation(t *testing.T) {
	if _, err := RunWithFaults(FaultConfig{Config: Config{}, Restart: 1}); err == nil {
		t.Fatal("invalid base config accepted")
	}
	good := Config{FB: 1, Update: 0, Interval: 1, Iterations: 1, Buffers: 3}
	if _, err := RunWithFaults(FaultConfig{Config: good, Restart: -1}); err == nil {
		t.Fatal("negative restart accepted")
	}
}

func TestFaultSimReplicationHidesBackendLoss(t *testing.T) {
	// With 2 replicas, losing one backend changes nothing about recovery:
	// the run matches the backend-fault-free run except the loss counter.
	base := Config{FB: 1, Update: 0, Snapshot: 1, Persist: 1,
		Interval: 10, Iterations: 100, Buffers: 3, Blocking: true}
	noLoss, err := RunWithFaults(FaultConfig{Config: base, Restart: 30, Faults: fault.At(55)})
	if err != nil {
		t.Fatal(err)
	}
	withLoss, err := RunWithFaults(FaultConfig{
		Config: base, Restart: 30, Faults: fault.At(55),
		Replicas: 2, BackendFaults: fault.At(25),
	})
	if err != nil {
		t.Fatal(err)
	}
	if withLoss.BackendFaults != 1 || withLoss.CheckpointsLost != 0 {
		t.Fatalf("backend accounting: %+v", withLoss)
	}
	if withLoss.LostIterations != noLoss.LostIterations ||
		math.Abs(withLoss.TotalTime-noLoss.TotalTime) > 1e-9 {
		t.Fatalf("surviving replica did not hide the loss: %+v vs %+v", withLoss, noLoss)
	}
}

func TestFaultSimLastReplicaLossForcesFullRollback(t *testing.T) {
	// Single replica: losing the backend at iteration 25 destroys the 2
	// persisted checkpoints, so the node fault at 27 — before the next
	// checkpoint at 30 re-establishes protection — rolls training back
	// to iteration 0.
	cfg := FaultConfig{
		Config: Config{FB: 1, Update: 0, Snapshot: 1, Persist: 1,
			Interval: 10, Iterations: 100, Buffers: 3, Blocking: true},
		Restart:       30,
		Faults:        fault.At(27),
		Replicas:      1,
		BackendFaults: fault.At(25),
	}
	res, err := RunWithFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackendFaults != 1 || res.CheckpointsLost != 2 {
		t.Fatalf("backend accounting: %+v", res)
	}
	if res.Faults != 1 || res.LostIterations != 27 {
		t.Fatalf("rollback accounting (want 27 lost iterations): %+v", res)
	}
	// Both the provisioning of the fresh backend and the node restart
	// pay the restart cost.
	if res.RestartTime != 60 {
		t.Fatalf("restart time %v, want 60", res.RestartTime)
	}
}

func TestFaultSimBackendLossRecoversByNextCheckpoint(t *testing.T) {
	// After a total backend loss, the next persisted checkpoint restores
	// rollback protection: a later node fault rolls back to it, not to 0.
	cfg := FaultConfig{
		Config: Config{FB: 1, Update: 0, Snapshot: 1, Persist: 1,
			Interval: 10, Iterations: 100, Buffers: 3, Blocking: true},
		Restart:       10,
		Faults:        fault.At(45),
		Replicas:      1,
		BackendFaults: fault.At(25),
	}
	res, err := RunWithFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoints at 30 and 40 postdate the wipe; fault at 45 loses 5.
	if res.LostIterations != 5 {
		t.Fatalf("lost iterations %d, want 5: %+v", res.LostIterations, res)
	}
}
