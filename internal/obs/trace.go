// Package obs is the unified observability layer for the storage
// stack: a low-overhead span tracer and a process-wide metrics
// registry, with JSONL, Chrome trace-event, and Prometheus-text
// exporters.
//
// The tracer is off by default. While disabled, Start returns a nil
// *Span and every Span method is a nil-safe no-op, so an instrumented
// hot path pays one atomic load and a predictable branch — no
// allocation, no clock read (BenchmarkObsOverhead asserts the bound).
// While enabled, completed spans land in a fixed-size ring (oldest
// overwritten first) and Snapshot copies them out for export.
//
// obs sits below simtime in the import graph (simtime imports core,
// core imports storage, storage imports obs), so the tracer owns its
// own monotonic clock instead of going through simtime's wall doors —
// the //moc:allow walltime directives below record that.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a trace record.
type Kind uint8

const (
	// KindSpan is a completed span covering [Start, Start+Dur).
	KindSpan Kind = iota
	// KindInstant is a point event — a chaos fault-window edge, a lease
	// transition — with zero duration.
	KindInstant
)

// maxAttrs is a span's inline attribute capacity; attributes set past
// it are dropped. Bounded and allocation-free beats exhaustive.
const maxAttrs = 6

// DefaultRingSize is the completed-record ring capacity when Enable is
// called with a non-positive size.
const DefaultRingSize = 4096

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Record is one completed span or instant retained in the trace ring.
type Record struct {
	ID     uint64
	Parent uint64
	// Component is the emitting subsystem ("cas", "remote", "fleet");
	// Op the operation ("WriteRound", "hash", "Scrub"). Track is the
	// exporter timeline row — Component by default, "component/lane"
	// for per-worker spans.
	Component string
	Op        string
	Track     string
	Start     int64 // ns since the tracer's epoch
	Dur       int64 // ns; 0 for instants
	Kind      Kind
	NAttr     int
	Attrs     [maxAttrs]Attr
}

// Tracer collects completed records into a fixed overwrite-oldest ring.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64

	mu   sync.Mutex
	ring []Record
	next uint64 // records ever committed; ring holds the newest len(ring)
}

func newTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	//moc:allow walltime obs sits below simtime in the import graph and owns the trace clock
	return &Tracer{epoch: time.Now(), ring: make([]Record, ringSize)}
}

// now is the trace clock: monotonic ns since the tracer's epoch.
func (t *Tracer) now() int64 {
	//moc:allow walltime obs sits below simtime in the import graph and owns the trace clock
	return time.Since(t.epoch).Nanoseconds()
}

func (t *Tracer) commit(r Record) {
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = r
	t.next++
	t.mu.Unlock()
}

func (t *Tracer) snapshot() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	count := t.next
	size := uint64(len(t.ring))
	if count > size {
		count = size
	}
	out := make([]Record, 0, count)
	for i := t.next - count; i < t.next; i++ {
		out = append(out, t.ring[i%size])
	}
	return out
}

// active is the installed tracer; nil means disabled. A single atomic
// load is the whole disabled-path cost of Start.
var active atomic.Pointer[Tracer]

// Enable installs a fresh tracer retaining ringSize completed records
// (DefaultRingSize when ringSize <= 0), replacing any previous tracer
// and its records.
func Enable(ringSize int) { active.Store(newTracer(ringSize)) }

// Disable uninstalls the tracer. Spans already started End harmlessly
// into the detached ring.
func Disable() { active.Store(nil) }

// Enabled reports whether a tracer is installed.
func Enabled() bool { return active.Load() != nil }

// Snapshot copies the retained records out in commit order, oldest
// first. Nil when disabled.
func Snapshot() []Record {
	t := active.Load()
	if t == nil {
		return nil
	}
	return t.snapshot()
}

// Dropped reports how many records the ring has overwritten since
// Enable — non-zero means the ring was sized too small for the run.
func Dropped() uint64 {
	t := active.Load()
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if size := uint64(len(t.ring)); t.next > size {
		return t.next - size
	}
	return 0
}

// Span is one in-flight traced operation. A nil Span (tracing
// disabled) accepts every method as a no-op, so call sites never
// branch on Enabled themselves.
type Span struct {
	t         *Tracer
	id        uint64
	parent    uint64
	component string
	op        string
	track     string
	start     int64
	nattr     int
	attrs     [maxAttrs]Attr
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

func (t *Tracer) start(parent uint64, component, op string) *Span {
	s := spanPool.Get().(*Span)
	s.t = t
	s.id = t.ids.Add(1)
	s.parent = parent
	s.component = component
	s.op = op
	s.track = component
	s.nattr = 0
	s.start = t.now()
	return s
}

// Start opens a span for one operation of a component. It returns nil
// while tracing is disabled; every Span method is nil-safe, so the
// caller's only obligation is that the span reaches End on every path
// (the spanend analyzer enforces this).
func Start(component, op string) *Span {
	t := active.Load()
	if t == nil {
		return nil
	}
	return t.start(0, component, op)
}

// Child opens a sub-span of s on the same component.
func (s *Span) Child(op string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(s.id, s.component, op)
}

// Lane moves the span onto the "component/lane" exporter track — one
// timeline row per pipeline worker — and returns s for chaining.
func (s *Span) Lane(lane string) *Span {
	if s == nil {
		return nil
	}
	s.track = s.component + "/" + lane
	return s
}

// Worker is Lane("w<i>") — the numbered-worker convenience.
func (s *Span) Worker(i int) *Span {
	if s == nil {
		return nil
	}
	return s.Lane("w" + strconv.Itoa(i))
}

// Attr attaches one key/value attribute (dropped past the inline
// capacity) and returns s for chaining.
func (s *Span) Attr(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.nattr < maxAttrs {
		s.attrs[s.nattr] = Attr{Key: key, Value: value}
		s.nattr++
	}
	return s
}

// AttrInt is Attr with an integer value.
func (s *Span) AttrInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatInt(v, 10))
}

// End completes the span, commits it to the ring, and returns its
// duration in nanoseconds — 0 when tracing was disabled at Start, so
// callers can gate duration-derived metric observations on the return
// value. The span must not be used after End.
func (s *Span) End() int64 {
	if s == nil {
		return 0
	}
	end := s.t.now()
	r := Record{
		ID:        s.id,
		Parent:    s.parent,
		Component: s.component,
		Op:        s.op,
		Track:     s.track,
		Start:     s.start,
		Dur:       end - s.start,
		Kind:      KindSpan,
		NAttr:     s.nattr,
		Attrs:     s.attrs,
	}
	s.t.commit(r)
	d := end - s.start
	*s = Span{}
	spanPool.Put(s)
	return d
}

// Instant records a point event on the component's track — chaos
// fault-window edges, lease transitions, rebalance topology changes.
// kv is alternating key, value pairs.
func Instant(component, name string, kv ...string) {
	t := active.Load()
	if t == nil {
		return
	}
	r := Record{
		ID:        t.ids.Add(1),
		Component: component,
		Op:        name,
		Track:     component,
		Start:     t.now(),
		Kind:      KindInstant,
	}
	for i := 0; i+1 < len(kv) && r.NAttr < maxAttrs; i += 2 {
		r.Attrs[r.NAttr] = Attr{Key: kv[i], Value: kv[i+1]}
		r.NAttr++
	}
	t.commit(r)
}

// Seconds converts an End duration (ns) to seconds for histogram
// observation.
func Seconds(ns int64) float64 { return float64(ns) / 1e9 }
