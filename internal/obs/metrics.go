package obs

// The process-wide metrics registry: counters, gauges, and fixed-bucket
// latency histograms under stable dotted names. Components create their
// instruments at construction (get-or-create, so every store instance
// over the process shares one series per name) and update them with
// single atomic ops on the hot path. Per-instance stats structs are
// re-exported through GaugeFunc — registered only while obs is enabled,
// so benchmark-built throwaway stores do not pollute the registry —
// and multiple funcs under one name sum, covering multi-instance
// stacks.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (callers keep it non-negative; counters are monotonic).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a set-to-current-value metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets is the shared 1-2-5 decade ladder from 1 µs to
// 100 s — wide enough for both wall latencies and cost-model
// sim-seconds.
var DefaultLatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5,
	1, 2, 5, 10, 20, 50, 100,
}

// Histogram is a fixed-bucket histogram with atomic counters: bucket i
// counts observations v with bounds[i-1] < v <= bounds[i], plus one
// overflow bucket past the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits; +Inf until first observation
	max    atomic.Uint64 // float64 bits; -Inf until first observation
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistSnapshot is a histogram's consistent-enough read: bucket counts,
// total, sum, and observed extrema.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is overflow
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Min:    math.Float64frombits(h.min.Load()),
		Max:    math.Float64frombits(h.max.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1): it finds the bucket
// holding the rank-⌈q·N⌉ observation, interpolates linearly assuming
// that bucket's observations are evenly spaced across (lower, upper],
// and clamps to the observed [Min, Max]. Observations sitting exactly
// on bucket bounds are therefore recovered exactly; the overflow
// bucket reports Max. NaN on an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if rank <= seen+c {
			if i == len(s.Bounds) {
				return s.Max
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			v := lower + (s.Bounds[i]-lower)*float64(rank-seen)/float64(c)
			return math.Min(math.Max(v, s.Min), s.Max)
		}
		seen += c
	}
	return s.Max
}

// Quantile is Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Point is one named value in a registry snapshot. Counters and gauges
// carry Value; histograms carry Hist (Value is the observation count).
type Point struct {
	Name  string
	Kind  string // "counter", "gauge", "histogram"
	Value float64
	Hist  *HistSnapshot
}

// Registry is a name-keyed set of instruments. The zero value is not
// usable; use NewRegistry or the process-wide Metrics().
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string][]func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string][]func() float64),
	}
}

var defaultRegistry = NewRegistry()

// Metrics returns the process-wide registry.
func Metrics() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later callers share the first
// creation's buckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a read-on-snapshot gauge. Multiple funcs under
// one name sum — each store instance re-exports its own stats and the
// registry presents the fleet-wide total.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = append(r.funcs[name], fn)
	r.mu.Unlock()
}

// Reset drops every instrument and gauge func — test isolation only.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
	r.funcs = make(map[string][]func() float64)
	r.mu.Unlock()
}

// Snapshot reads every instrument, sorted by name. Gauge funcs are
// called outside the registry lock (they typically take store locks).
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	points := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		points = append(points, Point{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	gaugeVals := make(map[string]float64, len(r.gauges)+len(r.funcs))
	for name, g := range r.gauges {
		gaugeVals[name] = g.Value()
	}
	type namedFuncs struct {
		name string
		fns  []func() float64
	}
	funcs := make([]namedFuncs, 0, len(r.funcs))
	for name, fns := range r.funcs {
		funcs = append(funcs, namedFuncs{name, append([]func() float64(nil), fns...)})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		points = append(points, Point{Name: name, Kind: "histogram", Value: float64(s.Count), Hist: &s})
	}
	r.mu.Unlock()

	for _, nf := range funcs {
		total := gaugeVals[nf.name]
		for _, fn := range nf.fns {
			total += fn()
		}
		gaugeVals[nf.name] = total
	}
	for name, v := range gaugeVals {
		points = append(points, Point{Name: name, Kind: "gauge", Value: v})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	return points
}

// promName maps a dotted metric name to Prometheus exposition charset.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// WriteProm writes the registry in Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// _bucket/_sum/_count series.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, p := range r.Snapshot() {
		name := promName(p.Name)
		switch p.Kind {
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for i, b := range p.Hist.Bounds {
				cum += p.Hist.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum); err != nil {
					return err
				}
			}
			cum += p.Hist.Counts[len(p.Hist.Bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				name, cum, name, p.Hist.Sum, name, p.Hist.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", name, p.Kind, name, p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
