package obs

// Exporters for the trace ring: JSONL span dumps for ad-hoc analysis,
// Chrome trace-event JSON for Perfetto/chrome://tracing timelines (one
// track per component/worker lane, chaos windows as instant events),
// and file-writing conveniences over both plus the Prometheus text
// snapshot.

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sort"
)

// jsonlRecord is the flat JSONL shape of one Record.
type jsonlRecord struct {
	ID        uint64            `json:"id"`
	Parent    uint64            `json:"parent,omitempty"`
	Kind      string            `json:"kind"`
	Component string            `json:"component"`
	Op        string            `json:"op"`
	Track     string            `json:"track"`
	StartNS   int64             `json:"start_ns"`
	DurNS     int64             `json:"dur_ns,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

func recordAttrs(r Record) map[string]string {
	if r.NAttr == 0 {
		return nil
	}
	m := make(map[string]string, r.NAttr)
	for _, a := range r.Attrs[:r.NAttr] {
		m[a.Key] = a.Value
	}
	return m
}

// WriteSpansJSONL writes one JSON object per record, newline-
// delimited, in ring order.
func WriteSpansJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		kind := "span"
		if r.Kind == KindInstant {
			kind = "instant"
		}
		jr := jsonlRecord{
			ID:        r.ID,
			Parent:    r.Parent,
			Kind:      kind,
			Component: r.Component,
			Op:        r.Op,
			Track:     r.Track,
			StartNS:   r.Start,
			DurNS:     r.Dur,
			Attrs:     recordAttrs(r),
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event ("trace event format") entry.
type chromeEvent struct {
	Name  string            `json:"name"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes records as a Chrome trace-event JSON array —
// load it in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// distinct Record.Track becomes one named thread row; spans are
// complete "X" events, instants are "i" events; timestamps are
// microseconds since the trace epoch.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	tracks := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, r := range recs {
		if !seen[r.Track] {
			seen[r.Track] = true
			tracks = append(tracks, r.Track)
		}
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	events := make([]chromeEvent, 0, len(tracks)*2+len(recs))
	for i, tr := range tracks {
		tid[tr] = i + 1
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]string{"name": tr},
		})
		events = append(events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]string{"sort_index": "0"},
		})
	}
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Component + "." + r.Op,
			Ts:   float64(r.Start) / 1e3,
			Pid:  1,
			Tid:  tid[r.Track],
			Args: recordAttrs(r),
		}
		if r.Kind == KindInstant {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(r.Dur) / 1e3
		}
		events = append(events, ev)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(events); err != nil {
		return err
	}
	return bw.Flush()
}

// DumpTrace writes the active tracer's snapshot as a Chrome trace file
// at path. A no-op (empty array file) while disabled.
func DumpTrace(path string) error {
	return dumpTo(path, func(w io.Writer) error { return WriteChromeTrace(w, Snapshot()) })
}

// DumpSpans writes the active tracer's snapshot as JSONL at path.
func DumpSpans(path string) error {
	return dumpTo(path, func(w io.Writer) error { return WriteSpansJSONL(w, Snapshot()) })
}

// DumpMetrics writes the process-wide registry as Prometheus text at
// path.
func DumpMetrics(path string) error {
	return dumpTo(path, func(w io.Writer) error { return Metrics().WriteProm(w) })
}

func dumpTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
