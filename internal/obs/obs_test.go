package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDisabledSpanIsNilAndSafe(t *testing.T) {
	Disable()
	sp := Start("cas", "WriteRound")
	if sp != nil {
		t.Fatalf("Start while disabled = %v, want nil", sp)
	}
	// Every method must be a no-op on the nil span.
	child := sp.Child("hash").Worker(3).Attr("k", "v").AttrInt("n", 7)
	if child != nil {
		t.Fatalf("nil-span chain = %v, want nil", child)
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("nil End = %d, want 0", d)
	}
	Instant("chaos", "degrade") // must not panic
	if recs := Snapshot(); recs != nil {
		t.Fatalf("Snapshot while disabled = %v, want nil", recs)
	}
}

func TestSpanLifecycle(t *testing.T) {
	Enable(64)
	defer Disable()

	root := Start("cas", "WriteRound").AttrInt("round", 3)
	child := root.Child("hash").Worker(1).Attr("chunks", "32")
	if d := child.End(); d < 0 {
		t.Fatalf("child duration %d < 0", d)
	}
	Instant("chaos", "degrade", "target", "0")
	if d := root.End(); d < 0 {
		t.Fatalf("root duration %d < 0", d)
	}

	recs := Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	ch, inst, rt := recs[0], recs[1], recs[2]
	if ch.Op != "hash" || ch.Track != "cas/w1" || ch.Parent != rt.ID {
		t.Fatalf("child record %+v: want op=hash track=cas/w1 parent=%d", ch, rt.ID)
	}
	if ch.NAttr != 1 || ch.Attrs[0] != (Attr{"chunks", "32"}) {
		t.Fatalf("child attrs %+v", ch.Attrs[:ch.NAttr])
	}
	if inst.Kind != KindInstant || inst.Op != "degrade" || inst.Dur != 0 {
		t.Fatalf("instant record %+v", inst)
	}
	if rt.Op != "WriteRound" || rt.Kind != KindSpan || rt.Attrs[0] != (Attr{"round", "3"}) {
		t.Fatalf("root record %+v", rt)
	}
	if rt.Start > ch.Start || rt.Start+rt.Dur < ch.Start+ch.Dur {
		t.Fatalf("root [%d,%d) does not contain child [%d,%d)", rt.Start, rt.Dur, ch.Start, ch.Dur)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	Enable(4)
	defer Disable()
	for i := 0; i < 10; i++ {
		Start("c", "op").AttrInt("i", int64(i)).End()
	}
	recs := Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want ring size 4", len(recs))
	}
	for i, r := range recs {
		want := string(rune('6' + i))
		if r.Attrs[0].Value != want {
			t.Fatalf("record %d attr %v, want i=%s (newest 4 kept, oldest first)", i, r.Attrs[0], want)
		}
	}
	if d := Dropped(); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
}

func TestHistogramQuantileExactSmallN(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3, 4, 5})
	// One observation per bucket bound: quantiles are exact.
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{0.2, 1}, {0.4, 2}, {0.5, 3}, {0.6, 3}, {0.8, 4}, {0.95, 5}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileBoundaryValues(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	// Repeated observations exactly at one bound: every quantile is
	// that bound (interpolation clamps to observed Min/Max).
	h.Observe(2)
	h.Observe(2)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%g) = %g, want 2", q, got)
		}
	}
	// Overflow bucket reports the observed max.
	h.Observe(99)
	if got := h.Quantile(1); got != 99 {
		t.Errorf("overflow Quantile(1) = %g, want 99", got)
	}
	s := h.Snapshot()
	if s.Min != 2 || s.Max != 99 || s.Count != 3 || s.Sum != 103 {
		t.Errorf("snapshot min/max/count/sum = %g/%g/%d/%g", s.Min, s.Max, s.Count, s.Sum)
	}
}

func TestHistogramEmptyQuantileIsNaN(t *testing.T) {
	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %g, want NaN", got)
	}
}

func TestRegistrySnapshotAndGaugeFuncSumming(t *testing.T) {
	r := NewRegistry()
	r.Counter("remote.ops.put").Add(5)
	r.Gauge("cache.bytes").Set(100)
	r.GaugeFunc("cache.bytes", func() float64 { return 20 })
	r.GaugeFunc("cache.bytes", func() float64 { return 3 })
	r.Histogram("cas.persist.round.seconds", DefaultLatencyBuckets).Observe(0.002)

	pts := r.Snapshot()
	byName := make(map[string]Point, len(pts))
	for _, p := range pts {
		byName[p.Name] = p
	}
	if p := byName["remote.ops.put"]; p.Kind != "counter" || p.Value != 5 {
		t.Errorf("counter point %+v", p)
	}
	if p := byName["cache.bytes"]; p.Kind != "gauge" || p.Value != 123 {
		t.Errorf("gauge point %+v, want summed 123", p)
	}
	p := byName["cas.persist.round.seconds"]
	if p.Kind != "histogram" || p.Hist == nil || p.Hist.Count != 1 {
		t.Fatalf("histogram point %+v", p)
	}
	// Same name returns the same instrument.
	if r.Counter("remote.ops.put") != r.Counter("remote.ops.put") {
		t.Error("Counter not idempotent by name")
	}
	// Snapshot is name-sorted.
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name >= pts[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", pts[i-1].Name, pts[i].Name)
		}
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("remote.ops.get").Add(7)
	h := r.Histogram("lat.seconds", []float64{0.001, 0.01})
	h.Observe(0.001)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		"lat_seconds_bucket{le=\"0.001\"} 1",
		"lat_seconds_bucket{le=\"0.01\"} 1",
		"lat_seconds_bucket{le=\"+Inf\"} 2",
		"lat_seconds_count 2",
		"# TYPE remote_ops_get counter",
		"remote_ops_get 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom text missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRegistryAndTracer(t *testing.T) {
	// Hammer every concurrent surface at once; run with -race.
	r := NewRegistry()
	Enable(256)
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c")
			ga := r.Gauge("g")
			h := r.Histogram("h", DefaultLatencyBuckets)
			for i := 0; i < 500; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i%10) * 1e-4)
				sp := Start("t", "op").Worker(g).AttrInt("i", int64(i))
				sp.Child("inner").End()
				sp.End()
				if i%100 == 0 {
					r.GaugeFunc("fn", func() float64 { return 1 })
					r.Snapshot()
					Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("g").Value(); got != 8*500 {
		t.Fatalf("gauge = %g, want %d", got, 8*500)
	}
}

func TestChromeTraceExport(t *testing.T) {
	Enable(64)
	defer Disable()
	root := Start("cas", "WriteRound")
	root.Child("hash").Worker(0).End()
	Instant("chaos", "degrade", "target", "1")
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace.json is not a JSON array: %v", err)
	}
	var threads, spans, instants int
	names := map[string]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threads++
				names[ev["args"].(map[string]any)["name"].(string)] = true
			}
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if threads != 3 || !names["cas"] || !names["cas/w0"] || !names["chaos"] {
		t.Fatalf("tracks %v (%d), want cas, cas/w0, chaos", names, threads)
	}
	if spans != 2 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 2/1", spans, instants)
	}
}

func TestSpansJSONLExport(t *testing.T) {
	Enable(64)
	defer Disable()
	Start("c", "op").Attr("k", "v").End()
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, Snapshot()); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("bad JSONL line %q: %v", line, err)
	}
	if rec["component"] != "c" || rec["op"] != "op" || rec["kind"] != "span" {
		t.Fatalf("record %v", rec)
	}
	if rec["attrs"].(map[string]any)["k"] != "v" {
		t.Fatalf("attrs %v", rec["attrs"])
	}
}
