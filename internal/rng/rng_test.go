package rng

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	saw := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		saw[r.Uint64()] = true
	}
	if len(saw) < 90 {
		t.Fatalf("seed 0 stream looks degenerate: %d distinct of 100", len(saw))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child matched %d times", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	err := quick.Check(func(seed uint64) bool {
		rr := New(seed)
		n := 1 + int(seed%50)
		p := rr.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestExpMean(t *testing.T) {
	r := New(31)
	const rate = 2.5
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormFloat32Scale(t *testing.T) {
	r := New(37)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.NormFloat32(3, 0.5))
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.02 {
		t.Fatalf("NormFloat32 mean = %v, want ~3", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func TestFillDeterministicDistinctAndOddLengths(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 1023} {
		a, b := make([]byte, n), make([]byte, n)
		New(5).Fill(a)
		New(5).Fill(b)
		if !bytes.Equal(a, b) {
			t.Fatalf("len %d: same seed diverged", n)
		}
	}
	a, b := make([]byte, 256), make([]byte, 256)
	New(1).Fill(a)
	New(2).Fill(b)
	if bytes.Equal(a, b) {
		t.Fatal("distinct seeds produced identical fills")
	}
	// The tail path must actually write the trailing bytes.
	c := bytes.Repeat([]byte{0xAA}, 13)
	New(9).Fill(c)
	if c[12] == 0xAA && c[11] == 0xAA && c[10] == 0xAA {
		t.Fatal("tail bytes left unwritten")
	}
}

func TestZipfDeterministicAndBounded(t *testing.T) {
	const n = 64
	a := NewZipf(New(7), n, 1.1)
	b := NewZipf(New(7), n, 1.1)
	for i := 0; i < 4096; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
		if x < 0 || x >= n {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
}

func TestZipfSkewFavorsLowRanks(t *testing.T) {
	// Under s=1.1 over 32 ranks, rank 0 should draw roughly a quarter of
	// the mass — strictly more than any other rank, and far more than
	// the tail.
	const n, draws = 32, 100000
	z := NewZipf(New(123), n, 1.1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for r := 1; r < n; r++ {
		if counts[r] > counts[0] {
			t.Fatalf("rank %d drawn %d times, more than rank 0's %d", r, counts[r], counts[0])
		}
	}
	if counts[0] < draws/8 {
		t.Fatalf("rank 0 drew only %d of %d — not Zipf-skewed", counts[0], draws)
	}
	tail := 0
	for r := n / 2; r < n; r++ {
		tail += counts[r]
	}
	if tail >= counts[0] {
		t.Fatalf("tail half drew %d, rank 0 drew %d — skew too flat", tail, counts[0])
	}
}

func TestZipfRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1.1}, {-3, 1.1}, {8, 0}, {8, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(n=%d, s=%v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}
