// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository. Every stochastic component
// (data generation, weight init, gating noise, fault schedules) draws from
// an explicitly seeded *rng.RNG so experiments are exactly reproducible.
//
// The generator is xoshiro256** seeded via SplitMix64, following the
// reference constructions by Blackman & Vigna. It is not cryptographically
// secure and is not safe for concurrent use; callers that need parallel
// streams should Split the generator, which derives an independent stream.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator.
// The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
	// cached second Gaussian from Box-Muller
	gauss   float64
	hasNorm bool
}

// splitmix64 advances the state and returns the next SplitMix64 output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fill overwrites b with pseudo-random bytes, eight per Uint64 draw.
// Distinct seeds yield chunk-level-distinct payloads, which makes it
// the generator of dedup-proof probe and benchmark blobs.
func (r *RNG) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent outputs. Both generators remain usable.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection is overkill here;
	// modulo bias is negligible for n << 2^64 but we avoid it anyway.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasNorm {
		r.hasNorm = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasNorm = true
	return radius * math.Cos(theta)
}

// NormFloat32 returns a normal variate with the given mean and stddev as a
// float32, convenient for weight initialization.
func (r *RNG) NormFloat32(mean, std float64) float32 {
	return float32(mean + std*r.Norm())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the access skew of real read traffic (a few hot base
// models, a long tail). Implemented as inverse-CDF over a precomputed
// table: O(n) to build, O(log n) per sample, deterministic given the
// generator. Like the RNG itself it is not safe for concurrent use;
// give each reader its own (Split the parent generator).
type Zipf struct {
	r   *RNG
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics on
// n <= 0 or s <= 0 (s ≈ 1 is the classic web-object distribution;
// larger s is more skew).
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: Zipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against float round-down at the tail
	return &Zipf{r: r, cdf: cdf}
}

// Next draws a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// Used by Poisson fault schedules.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}
