package train

import (
	"fmt"
	"math"

	"moc/internal/data"
	"moc/internal/moe"
	"moc/internal/tensor"
)

// StepStats reports one training step's outcome.
type StepStats struct {
	// Loss is the mean cross-entropy of the batch.
	Loss float64
	// AuxLoss is the summed auxiliary load-balancing loss across MoE
	// layers (0 when AuxLossCoeff is 0).
	AuxLoss float64
	// Routings holds the per-MoE-layer routing statistics of the batch,
	// in MoE-layer order — the feed for the PLT tracker and the
	// load-aware selector.
	Routings []*moe.Routing
}

// slotCache stores what the backward pass needs for one dispatch slot.
type slotCache struct {
	expert  int
	gate    float32
	dropped bool
	u       []float32 // expert first-layer pre-activation
}

type blockCache struct {
	xin      [][]float32 // block input per token
	attenPre [][]float32
	xmid     [][]float32 // after the atten sublayer (input to FFN/MoE)
	// dense-FFN path
	ffnU [][]float32
	// MoE path
	routing *moe.Routing
	slots   [][]slotCache
}

// TrainBatch runs one optimization step over the examples and returns the
// mean cross-entropy loss plus routing statistics. Training is
// deterministic given the model seed and example stream.
func (m *Model) TrainBatch(examples []data.Example) (StepStats, error) {
	stats, err := m.process(examples, true)
	if err != nil {
		return stats, err
	}
	m.adamStep()
	m.iter++
	return stats, nil
}

// Evaluate computes the mean loss and next-token accuracy on the examples
// without noise, capacity dropping, or parameter updates.
func (m *Model) Evaluate(examples []data.Example) (loss, accuracy float64, err error) {
	if len(examples) == 0 {
		return 0, 0, fmt.Errorf("train: empty evaluation set")
	}
	h := m.cfg.Model.HiddenSize
	correct := 0
	var total float64
	logits := make([]float32, m.cfg.Model.VocabSize)
	probs := make([]float32, m.cfg.Model.VocabSize)
	for _, ex := range examples {
		x := m.embedContext(ex.Context)
		for _, b := range m.blocks {
			x = m.blockForwardEval(b, x)
		}
		tensor.MatVec(logits, m.out.W, x)
		tensor.Axpy(logits, 1, m.outB.W.Data)
		lse := tensor.LogSumExp(logits)
		total += lse - float64(logits[ex.Target])
		tensor.Softmax(probs, logits)
		if tensor.ArgMax(probs) == ex.Target {
			correct++
		}
		_ = h
	}
	return total / float64(len(examples)), float64(correct) / float64(len(examples)), nil
}

// embedContext builds the input feature: the mean embedding of the context
// window.
func (m *Model) embedContext(ctx []int) []float32 {
	h := m.cfg.Model.HiddenSize
	x := make([]float32, h)
	if len(ctx) == 0 {
		return x
	}
	inv := float32(1) / float32(len(ctx))
	for _, tok := range ctx {
		row := m.embed.W.Row(tok)
		for j := range x {
			x[j] += inv * row[j]
		}
	}
	return x
}

// blockForwardEval is the inference-only path (no caches, no noise, no
// capacity limit).
func (m *Model) blockForwardEval(b *block, x []float32) []float32 {
	h := m.cfg.Model.HiddenSize
	ff := m.cfg.Model.FFNMult * h
	pre := make([]float32, h)
	tensor.MatVec(pre, b.attenW.W, x)
	tensor.Axpy(pre, 1, b.attenB.W.Data)
	xmid := make([]float32, h)
	for j := range xmid {
		v := pre[j]
		if v < 0 {
			v = 0
		}
		xmid[j] = x[j] + v
	}
	out := append([]float32(nil), xmid...)
	applyFFN := func(f *ffnParams, gate float32) {
		u := make([]float32, ff)
		tensor.MatVec(u, f.w1.W, xmid)
		tensor.Axpy(u, 1, f.b1.W.Data)
		tensor.ReLU(u, u)
		y := make([]float32, h)
		tensor.MatVec(y, f.w2.W, u)
		tensor.Axpy(y, 1, f.b2.W.Data)
		tensor.Axpy(out, gate, y)
	}
	if b.isMoE {
		lg := make([]float32, m.cfg.Model.NumExperts)
		tensor.MatVec(lg, b.gate.W, xmid)
		probs := make([]float32, len(lg))
		tensor.Softmax(probs, lg)
		top := tensor.TopK(probs, m.cfg.Model.TopK)
		var denom float32
		for _, e := range top {
			denom += probs[e]
		}
		for _, e := range top {
			applyFFN(b.experts[e], probs[e]/denom)
		}
	} else {
		applyFFN(b.ffn, 1)
	}
	return out
}

// process runs forward (and backward when train is set) over a batch.
func (m *Model) process(examples []data.Example, train bool) (StepStats, error) {
	if len(examples) == 0 {
		return StepStats{}, fmt.Errorf("train: empty batch")
	}
	mc := m.cfg.Model
	h := mc.HiddenSize
	ff := mc.FFNMult * h
	B := len(examples)

	caches := make([]*blockCache, len(m.blocks))
	x := make([][]float32, B)
	for t, ex := range examples {
		x[t] = m.embedContext(ex.Context)
	}

	// ---- forward ----
	for bi, b := range m.blocks {
		c := &blockCache{
			xin:      make([][]float32, B),
			attenPre: make([][]float32, B),
			xmid:     make([][]float32, B),
		}
		caches[bi] = c
		for t := 0; t < B; t++ {
			c.xin[t] = x[t]
			pre := make([]float32, h)
			tensor.MatVec(pre, b.attenW.W, x[t])
			tensor.Axpy(pre, 1, b.attenB.W.Data)
			c.attenPre[t] = pre
			xmid := make([]float32, h)
			for j := range xmid {
				v := pre[j]
				if v < 0 {
					v = 0
				}
				xmid[j] = x[t][j] + v
			}
			c.xmid[t] = xmid
		}
		if b.isMoE {
			logits := make([][]float32, B)
			for t := 0; t < B; t++ {
				lg := make([]float32, mc.NumExperts)
				tensor.MatVec(lg, b.gate.W, c.xmid[t])
				logits[t] = lg
			}
			rcfg := moe.RouterConfig{
				NumExperts:     mc.NumExperts,
				TopK:           mc.TopK,
				CapacityFactor: m.cfg.CapacityFactor,
				NoiseStd:       m.cfg.NoiseStd,
			}
			var noiseRng = m.r
			if !train {
				noiseRng = nil
			}
			routing, err := moe.Route(rcfg, logits, noiseRng)
			if err != nil {
				return StepStats{}, err
			}
			c.routing = routing
			c.slots = make([][]slotCache, B)
			for t := 0; t < B; t++ {
				xout := append([]float32(nil), c.xmid[t]...)
				slots := make([]slotCache, 0, mc.TopK)
				for _, s := range routing.Slots[t] {
					sc := slotCache{expert: s.Expert, gate: s.Gate, dropped: s.Dropped}
					if !s.Dropped {
						f := b.experts[s.Expert]
						u := make([]float32, ff)
						tensor.MatVec(u, f.w1.W, c.xmid[t])
						tensor.Axpy(u, 1, f.b1.W.Data)
						sc.u = u
						a := make([]float32, ff)
						tensor.ReLU(a, u)
						y := make([]float32, h)
						tensor.MatVec(y, f.w2.W, a)
						tensor.Axpy(y, 1, f.b2.W.Data)
						tensor.Axpy(xout, s.Gate, y)
					}
					slots = append(slots, sc)
				}
				c.slots[t] = slots
				x[t] = xout
			}
		} else {
			c.ffnU = make([][]float32, B)
			for t := 0; t < B; t++ {
				u := make([]float32, ff)
				tensor.MatVec(u, b.ffn.w1.W, c.xmid[t])
				tensor.Axpy(u, 1, b.ffn.b1.W.Data)
				c.ffnU[t] = u
				a := make([]float32, ff)
				tensor.ReLU(a, u)
				y := make([]float32, h)
				tensor.MatVec(y, b.ffn.w2.W, a)
				tensor.Axpy(y, 1, b.ffn.b2.W.Data)
				xout := append([]float32(nil), c.xmid[t]...)
				tensor.Axpy(xout, 1, y)
				x[t] = xout
			}
		}
	}

	// ---- head + loss ----
	stats := StepStats{}
	for _, c := range caches {
		if c.routing != nil {
			stats.Routings = append(stats.Routings, c.routing)
			if m.cfg.AuxLossCoeff > 0 {
				stats.AuxLoss += auxLoss(m.cfg.AuxLossCoeff, c.routing)
			}
		}
	}
	dlogits := make([][]float32, B)
	var lossSum float64
	logits := make([]float32, mc.VocabSize)
	for t, ex := range examples {
		tensor.MatVec(logits, m.out.W, x[t])
		tensor.Axpy(logits, 1, m.outB.W.Data)
		lse := tensor.LogSumExp(logits)
		lossSum += lse - float64(logits[ex.Target])
		if train {
			dl := make([]float32, mc.VocabSize)
			tensor.Softmax(dl, logits)
			dl[ex.Target] -= 1
			tensor.Scale(dl, 1/float32(B))
			dlogits[t] = dl
		}
	}
	stats.Loss = lossSum / float64(B)
	if math.IsNaN(stats.Loss) || math.IsInf(stats.Loss, 0) {
		return stats, fmt.Errorf("train: loss diverged (%v)", stats.Loss)
	}
	if !train {
		return stats, nil
	}

	// ---- backward ----
	dx := make([][]float32, B)
	for t := 0; t < B; t++ {
		d := make([]float32, h)
		tensor.MatTVec(d, m.out.W, dlogits[t])
		tensor.AddOuter(m.out.G, dlogits[t], x[t])
		tensor.Axpy(m.outB.G.Data, 1, dlogits[t])
		dx[t] = d
	}

	da := make([]float32, ff)
	du := make([]float32, ff)
	dff := make([]float32, h)
	for bi := len(m.blocks) - 1; bi >= 0; bi-- {
		b := m.blocks[bi]
		c := caches[bi]
		// Auxiliary load-balancing gradient (constant across the batch):
		// dL_aux/dprobs[t][e] = coeff · N · f_e / B, with f_e the fraction
		// of dispatched tokens expert e processed.
		var dpAux []float32
		if b.isMoE && m.cfg.AuxLossCoeff > 0 {
			dpAux = auxProbGrad(m.cfg.AuxLossCoeff, c.routing, B)
		}
		for t := 0; t < B; t++ {
			// dy is the (read-only) gradient at the block output; dmid
			// accumulates the gradient at xmid: the residual path plus
			// every expert/FFN/gate contribution.
			dy := dx[t]
			dmid := append([]float32(nil), dy...)
			if b.isMoE {
				dgates := make([]float32, len(c.slots[t]))
				for si, sc := range c.slots[t] {
					if sc.dropped {
						continue
					}
					f := b.experts[sc.expert]
					a := make([]float32, ff)
					tensor.ReLU(a, sc.u)
					// dg = f(x)·dy; recompute f output.
					y := make([]float32, h)
					tensor.MatVec(y, f.w2.W, a)
					tensor.Axpy(y, 1, f.b2.W.Data)
					dgates[si] = tensor.Dot(y, dy)
					// df = g·dy
					for j := range dff {
						dff[j] = sc.gate * dy[j]
					}
					tensor.AddOuter(f.w2.G, dff, a)
					tensor.Axpy(f.b2.G.Data, 1, dff)
					tensor.MatTVec(da, f.w2.W, dff)
					tensor.ReLUGrad(du, da, sc.u)
					tensor.AddOuter(f.w1.G, du, c.xmid[t])
					tensor.Axpy(f.b1.G.Data, 1, du)
					add := make([]float32, h)
					tensor.MatTVec(add, f.w1.W, du)
					tensor.Axpy(dmid, 1, add)
				}
				// Gate backward: renormalized top-k over the softmax.
				probs := c.routing.Probs[t]
				var s float32
				for _, sc := range c.slots[t] {
					s += probs[sc.expert]
				}
				if s <= 0 {
					s = 1
				}
				var dot float32
				for si, sc := range c.slots[t] {
					_ = sc
					dot += dgates[si] * probs[c.slots[t][si].expert]
				}
				dp := make([]float32, mc.NumExperts)
				for si, sc := range c.slots[t] {
					dp[sc.expert] = dgates[si]/s - dot/(s*s)
				}
				if dpAux != nil {
					for e := range dp {
						dp[e] += dpAux[e]
					}
				}
				// Softmax backward over all experts.
				var pdp float32
				for e := range dp {
					pdp += dp[e] * probs[e]
				}
				dz := make([]float32, mc.NumExperts)
				for e := range dz {
					dz[e] = probs[e] * (dp[e] - pdp)
				}
				tensor.AddOuter(b.gate.G, dz, c.xmid[t])
				add := make([]float32, h)
				tensor.MatTVec(add, b.gate.W, dz)
				tensor.Axpy(dmid, 1, add)
			} else {
				f := b.ffn
				a := make([]float32, ff)
				tensor.ReLU(a, c.ffnU[t])
				tensor.AddOuter(f.w2.G, dy, a)
				tensor.Axpy(f.b2.G.Data, 1, dy)
				tensor.MatTVec(da, f.w2.W, dy)
				tensor.ReLUGrad(du, da, c.ffnU[t])
				tensor.AddOuter(f.w1.G, du, c.xmid[t])
				tensor.Axpy(f.b1.G.Data, 1, du)
				add := make([]float32, h)
				tensor.MatTVec(add, f.w1.W, du)
				tensor.Axpy(dmid, 1, add)
			}
			// Atten sublayer backward: xmid = xin + relu(W xin + b).
			dpre := make([]float32, h)
			tensor.ReLUGrad(dpre, dmid, c.attenPre[t])
			tensor.AddOuter(b.attenW.G, dpre, c.xin[t])
			tensor.Axpy(b.attenB.G.Data, 1, dpre)
			dxin := append([]float32(nil), dmid...) // residual path
			add := make([]float32, h)
			tensor.MatTVec(add, b.attenW.W, dpre)
			tensor.Axpy(dxin, 1, add)
			dx[t] = dxin
		}
	}

	// Embedding backward.
	for t, ex := range examples {
		if len(ex.Context) == 0 {
			continue
		}
		inv := 1 / float32(len(ex.Context))
		for _, tok := range ex.Context {
			row := m.embed.G.Row(tok)
			for j := range row {
				row[j] += inv * dx[t][j]
			}
		}
	}
	return stats, nil
}

// auxLoss computes the GShard/Switch load-balancing loss of one MoE layer:
// coeff · N · Σ_e f_e · P_e, where f_e is the fraction of dispatched
// tokens expert e processed and P_e the mean gate probability.
func auxLoss(coeff float64, r *moe.Routing) float64 {
	n := len(r.PerExpert)
	if n == 0 || len(r.Probs) == 0 {
		return 0
	}
	total := 0
	for _, c := range r.PerExpert {
		total += c
	}
	if total == 0 {
		return 0
	}
	var sum float64
	for e := 0; e < n; e++ {
		var pMean float64
		for t := range r.Probs {
			pMean += float64(r.Probs[t][e])
		}
		pMean /= float64(len(r.Probs))
		f := float64(r.PerExpert[e]) / float64(total)
		sum += f * pMean
	}
	return coeff * float64(n) * sum
}

// auxProbGrad returns dL_aux/dprobs[t] (identical for every token t in the
// batch): coeff · N · f_e / B, treating the dispatch fractions f as
// constants, the standard straight-through treatment.
func auxProbGrad(coeff float64, r *moe.Routing, batch int) []float32 {
	n := len(r.PerExpert)
	out := make([]float32, n)
	total := 0
	for _, c := range r.PerExpert {
		total += c
	}
	if total == 0 || batch == 0 {
		return out
	}
	for e := 0; e < n; e++ {
		f := float64(r.PerExpert[e]) / float64(total)
		out[e] = float32(coeff * float64(n) * f / float64(batch))
	}
	return out
}
