package train

import (
	"fmt"
	"strings"

	"moc/internal/core"
	"moc/internal/storage"
)

// Checkpoint keys: each module contributes a "<module>/w" blob (weights)
// and a "<module>/opt" blob (Adam m and v). Splitting weight and optimizer
// state lets the "W" and "O" PEC variants of §6.3 apply partial-expert
// saving to one of the two independently. A synthetic "meta/state" blob
// carries the global Adam step and training iteration.

const (
	weightSuffix = "/w"
	optSuffix    = "/opt"
	metaKey      = "meta/state"
)

// Variant selects which state classes PEC filtering applies to (§6.3,
// Table 3): weights, optimizer states, or both. State classes not under
// PEC are saved in full at every checkpoint.
type Variant struct {
	PECOnWeights   bool
	PECOnOptimizer bool
}

// VariantW applies PEC to weights only (row "W" of Table 3).
func VariantW() Variant { return Variant{PECOnWeights: true} }

// VariantO applies PEC to optimizer states only (row "O").
func VariantO() Variant { return Variant{PECOnOptimizer: true} }

// VariantWO applies PEC to both (rows "WO" and "WO-2L").
func VariantWO() Variant { return Variant{PECOnWeights: true, PECOnOptimizer: true} }

// VariantFull applies PEC to nothing: every checkpoint saves all state.
func VariantFull() Variant { return Variant{} }

// moduleTensors flattens a module's parameters to named tensors.
func (m *Model) moduleTensors(name string, weights bool) map[string][]float32 {
	ps, ok := m.modules[name]
	if !ok {
		return nil
	}
	out := make(map[string][]float32)
	for i, p := range ps {
		if weights {
			out[fmt.Sprintf("p%d", i)] = append([]float32(nil), p.W.Data...)
		} else {
			out[fmt.Sprintf("p%d.m", i)] = append([]float32(nil), p.M.Data...)
			out[fmt.Sprintf("p%d.v", i)] = append([]float32(nil), p.V.Data...)
		}
	}
	return out
}

// Capture builds the checkpoint payload for one round. sel restricts which
// experts are included (nil = all); the variant decides whether the expert
// restriction applies to weights, optimizer state, or both. Non-expert
// modules are always captured in full. The returned data is a deep copy,
// safe to hand to the asynchronous agent.
func (m *Model) Capture(sel *core.Selection, v Variant) core.CheckpointData {
	out := make(core.CheckpointData, 2*len(m.moduleOrder)+1)
	for _, name := range m.moduleOrder {
		moeLayer, expert, isExpert := m.IsExpertModule(name)
		saveW, saveO := true, true
		if isExpert {
			selected := sel.Contains(moeLayer, expert)
			if v.PECOnWeights && !selected {
				saveW = false
			}
			if v.PECOnOptimizer && !selected {
				saveO = false
			}
		}
		if saveW {
			out[name+weightSuffix] = storage.EncodeTensors(m.moduleTensors(name, true))
		}
		if saveO {
			out[name+optSuffix] = storage.EncodeTensors(m.moduleTensors(name, false))
		}
	}
	out[metaKey] = storage.EncodeTensors(map[string][]float32{
		"step": {float32(m.step)},
		"iter": {float32(m.iter)},
	})
	return out
}

// restoreModule loads tensors into a module's weights or optimizer state.
func (m *Model) restoreModule(name string, tensors map[string][]float32, weights bool) error {
	ps, ok := m.modules[name]
	if !ok {
		return fmt.Errorf("train: unknown module %q", name)
	}
	for i, p := range ps {
		if weights {
			vals, ok := tensors[fmt.Sprintf("p%d", i)]
			if !ok || len(vals) != len(p.W.Data) {
				return fmt.Errorf("train: module %q param %d weight shape mismatch", name, i)
			}
			copy(p.W.Data, vals)
		} else {
			mv, ok1 := tensors[fmt.Sprintf("p%d.m", i)]
			vv, ok2 := tensors[fmt.Sprintf("p%d.v", i)]
			if !ok1 || !ok2 || len(mv) != len(p.M.Data) || len(vv) != len(p.V.Data) {
				return fmt.Errorf("train: module %q param %d optimizer shape mismatch", name, i)
			}
			copy(p.M.Data, mv)
			copy(p.V.Data, vv)
		}
	}
	return nil
}

// Restore applies recovered checkpoint state to the model. Modules absent
// from the recovery keep their current (post-initialization) state — with
// PEC this is exactly the stale-experts semantics, since recovery follows
// initialization on a restarted job. It returns the training iteration
// recorded in the recovered metadata; the caller rewinds its loop there.
func (m *Model) Restore(rec map[string]core.RecoveredModule) (iteration int, err error) {
	meta, ok := rec[metaKey]
	if !ok {
		return 0, fmt.Errorf("train: recovery lacks %q", metaKey)
	}
	metaT, err := storage.DecodeTensors(meta.Blob)
	if err != nil {
		return 0, fmt.Errorf("train: decode meta: %w", err)
	}
	for key, rm := range rec {
		if key == metaKey {
			continue
		}
		var name string
		var weights bool
		switch {
		case strings.HasSuffix(key, weightSuffix):
			name, weights = strings.TrimSuffix(key, weightSuffix), true
		case strings.HasSuffix(key, optSuffix):
			name, weights = strings.TrimSuffix(key, optSuffix), false
		default:
			return 0, fmt.Errorf("train: unrecognized checkpoint key %q", key)
		}
		tensors, err := storage.DecodeTensors(rm.Blob)
		if err != nil {
			return 0, fmt.Errorf("train: decode %q: %w", key, err)
		}
		if err := m.restoreModule(name, tensors, weights); err != nil {
			return 0, err
		}
	}
	if s, ok := metaT["step"]; ok && len(s) == 1 {
		m.step = int(s[0])
	}
	if it, ok := metaT["iter"]; ok && len(it) == 1 {
		m.iter = int(it[0])
		return m.iter, nil
	}
	return 0, fmt.Errorf("train: recovery meta lacks iteration")
}

// PersistFilter builds the keep-for-persist predicate implementing
// persist-PEC: of the snapshot's content, persist non-expert state fully
// but expert state only for experts in persistSel. A nil persistSel keeps
// everything.
func (m *Model) PersistFilter(persistSel *core.Selection, v Variant) func(string) bool {
	if persistSel == nil {
		return nil
	}
	return func(key string) bool {
		var name string
		var isWeight bool
		switch {
		case strings.HasSuffix(key, weightSuffix):
			name, isWeight = strings.TrimSuffix(key, weightSuffix), true
		case strings.HasSuffix(key, optSuffix):
			name = strings.TrimSuffix(key, optSuffix)
		default:
			return true // meta
		}
		moeLayer, expert, isExpert := m.IsExpertModule(name)
		if !isExpert {
			return true
		}
		if isWeight && !v.PECOnWeights {
			return true
		}
		if !isWeight && !v.PECOnOptimizer {
			return true
		}
		return persistSel.Contains(moeLayer, expert)
	}
}

// CloneState deep-copies all weights (not optimizer state), used by tests
// to compare recovery outcomes.
func (m *Model) CloneState() map[string][]float32 {
	out := make(map[string][]float32)
	for name, ps := range m.modules {
		for i, p := range ps {
			out[fmt.Sprintf("%s#%d", name, i)] = append([]float32(nil), p.W.Data...)
		}
	}
	return out
}
