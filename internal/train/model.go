// Package train implements a real, small-scale sparse-MoE language-model
// trainer in pure Go: learnable token embeddings, per-layer dense
// sublayers, noisy top-k gated expert FFNs with capacity-based token
// dropping, a cross-entropy head, hand-written backpropagation, and an
// Adam optimizer with full (m, v) state.
//
// The trainer is the accuracy substrate for the PEC experiments: expert
// parameters receive real token-driven updates, so recovering from a
// partial-experts checkpoint genuinely rewinds some experts and not
// others, reproducing the update-loss dynamics the paper's Figures 5, 14
// and 15 and Tables 3 and 4 study — at a scale that trains in seconds.
//
// Module naming follows internal/model's inventory ("layer3.moe.expert5",
// "embed.token", "head"), which is what the checkpoint planners and the
// two-level agent address state by.
package train

import (
	"fmt"
	"math"

	"moc/internal/model"
	"moc/internal/rng"
	"moc/internal/tensor"
)

// Config parameterizes a trainer.
type Config struct {
	// Model is the architecture description (use model.TinyMoE shapes).
	Model model.Config
	// Window is the context length used to build input features.
	Window int
	// BatchSize is the number of (context, target) examples per step.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// CapacityFactor bounds per-expert tokens per batch (0 = unlimited).
	CapacityFactor float64
	// NoiseStd is the gate noise ε of Eq. 2 during training.
	NoiseStd float64
	// Seed makes initialization and gate noise deterministic.
	Seed uint64
	// FreezeExperts disables expert-parameter updates (the "FT-w.o.E"
	// fine-tuning variant of Table 4).
	FreezeExperts bool
	// AuxLossCoeff weights the GShard/Switch auxiliary load-balancing
	// loss, L_aux = coeff · N · Σ_e f_e · P_e, where f_e is the fraction
	// of tokens dispatched to expert e and P_e the mean gate probability.
	// 0 disables it.
	AuxLossCoeff float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Model.MoEEvery == 0 {
		return fmt.Errorf("train: model has no MoE layers")
	}
	if c.Window <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("train: window and batch size must be positive")
	}
	if c.LR <= 0 {
		return fmt.Errorf("train: learning rate must be positive")
	}
	return nil
}

// Param is one named trainable tensor with its gradient and Adam state.
type Param struct {
	Name string
	W    *tensor.Mat
	G    *tensor.Mat
	M, V *tensor.Mat
}

func newParam(name string, rows, cols int, r *rng.RNG, std float64) *Param {
	p := &Param{
		Name: name,
		W:    tensor.NewMat(rows, cols),
		G:    tensor.NewMat(rows, cols),
		M:    tensor.NewMat(rows, cols),
		V:    tensor.NewMat(rows, cols),
	}
	if std > 0 {
		for i := range p.W.Data {
			p.W.Data[i] = r.NormFloat32(0, std)
		}
	}
	return p
}

type ffnParams struct {
	w1, b1, w2, b2 *Param
}

func (f *ffnParams) params() []*Param { return []*Param{f.w1, f.b1, f.w2, f.b2} }

type block struct {
	layer    int
	attenW   *Param
	attenB   *Param
	isMoE    bool
	moeIndex int // index among MoE layers, -1 otherwise
	gate     *Param
	experts  []*ffnParams
	ffn      *ffnParams // dense FFN when !isMoE
}

// Model is a trainable sparse-MoE language model.
type Model struct {
	cfg    Config
	r      *rng.RNG
	embed  *Param
	blocks []*block
	out    *Param
	outB   *Param

	// modules maps checkpoint module names to their parameters.
	modules     map[string][]*Param
	moduleOrder []string
	// moeLayers[l] is the transformer-layer index of the l-th MoE layer.
	moeLayers []int

	step int // Adam time step
	iter int // training iteration (checkpoint bookkeeping)
}

// New builds and initializes a model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mc := cfg.Model
	h := mc.HiddenSize
	ff := mc.FFNMult * h
	r := rng.New(cfg.Seed)
	m := &Model{cfg: cfg, r: r, modules: make(map[string][]*Param)}
	std := 1.0 / math.Sqrt(float64(h))

	reg := func(name string, ps ...*Param) {
		m.modules[name] = ps
		m.moduleOrder = append(m.moduleOrder, name)
	}

	m.embed = newParam("embed.token", mc.VocabSize, h, r, std)
	reg("embed.token", m.embed)

	newFFN := func(prefix string) *ffnParams {
		return &ffnParams{
			w1: newParam(prefix+".w1", ff, h, r, std),
			b1: newParam(prefix+".b1", 1, ff, nil, 0),
			w2: newParam(prefix+".w2", h, ff, r, 1.0/math.Sqrt(float64(ff))),
			b2: newParam(prefix+".b2", 1, h, nil, 0),
		}
	}

	moeIdx := 0
	for i := 0; i < mc.NumLayers; i++ {
		b := &block{layer: i, moeIndex: -1}
		b.attenW = newParam(fmt.Sprintf("layer%d.atten.w", i), h, h, r, std)
		b.attenB = newParam(fmt.Sprintf("layer%d.atten.b", i), 1, h, nil, 0)
		reg(fmt.Sprintf("layer%d.atten", i), b.attenW, b.attenB)
		if mc.IsMoELayer(i) {
			b.isMoE = true
			b.moeIndex = moeIdx
			m.moeLayers = append(m.moeLayers, i)
			b.gate = newParam(fmt.Sprintf("layer%d.moe.gate", i), mc.NumExperts, h, r, std)
			reg(fmt.Sprintf("layer%d.moe.gate", i), b.gate)
			for e := 0; e < mc.NumExperts; e++ {
				exp := newFFN(fmt.Sprintf("layer%d.moe.expert%d", i, e))
				b.experts = append(b.experts, exp)
				reg(fmt.Sprintf("layer%d.moe.expert%d", i, e), exp.params()...)
			}
			moeIdx++
		} else {
			b.ffn = newFFN(fmt.Sprintf("layer%d.ffn", i))
			reg(fmt.Sprintf("layer%d.ffn", i), b.ffn.params()...)
		}
		m.blocks = append(m.blocks, b)
	}
	m.out = newParam("head.out", mc.VocabSize, h, r, std)
	m.outB = newParam("head.b", 1, mc.VocabSize, nil, 0)
	reg("head", m.out, m.outB)
	return m, nil
}

// Config returns the trainer configuration.
func (m *Model) Config() Config { return m.cfg }

// NumMoELayers returns the number of MoE layers.
func (m *Model) NumMoELayers() int { return len(m.moeLayers) }

// Iteration returns the number of completed training iterations.
func (m *Model) Iteration() int { return m.iter }

// ModuleNames returns all checkpoint module names in declaration order.
func (m *Model) ModuleNames() []string {
	return append([]string(nil), m.moduleOrder...)
}

// ExpertModuleName maps (MoE-layer index, expert index) to the module name.
func (m *Model) ExpertModuleName(moeLayer, expert int) string {
	return fmt.Sprintf("layer%d.moe.expert%d", m.moeLayers[moeLayer], expert)
}

// IsExpertModule parses an expert module name, returning its MoE-layer and
// expert indices.
func (m *Model) IsExpertModule(name string) (moeLayer, expert int, ok bool) {
	var layer int
	if n, err := fmt.Sscanf(name, "layer%d.moe.expert%d", &layer, &expert); err != nil || n != 2 {
		return 0, 0, false
	}
	for l, tl := range m.moeLayers {
		if tl == layer {
			return l, expert, true
		}
	}
	return 0, 0, false
}

// NumParams returns the total trainable parameter count.
func (m *Model) NumParams() int {
	total := 0
	for _, ps := range m.modules {
		for _, p := range ps {
			total += p.W.NumParams()
		}
	}
	return total
}

// adamStep applies one Adam update to every parameter from the accumulated
// gradients, then clears them.
func (m *Model) adamStep() {
	m.step++
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(beta1, float64(m.step))
	c2 := 1 - math.Pow(beta2, float64(m.step))
	lr := float32(m.cfg.LR)
	for _, name := range m.moduleOrder {
		if m.cfg.FreezeExperts {
			if _, _, isExpert := m.IsExpertModule(name); isExpert {
				for _, p := range m.modules[name] {
					p.G.Zero()
				}
				continue
			}
		}
		for _, p := range m.modules[name] {
			for i, g := range p.G.Data {
				if g == 0 {
					// Untouched parameters (unrouted experts) keep
					// their Adam state; skipping them matches the
					// sparse updates of real MoE training closely
					// enough for checkpoint studies.
					continue
				}
				p.M.Data[i] = beta1*p.M.Data[i] + (1-beta1)*g
				p.V.Data[i] = beta2*p.V.Data[i] + (1-beta2)*g*g
				mhat := float64(p.M.Data[i]) / c1
				vhat := float64(p.V.Data[i]) / c2
				p.W.Data[i] -= lr * float32(mhat/(math.Sqrt(vhat)+eps))
			}
			p.G.Zero()
		}
	}
}
