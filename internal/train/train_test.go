package train

import (
	"math"
	"testing"

	"moc/internal/core"
	"moc/internal/data"
	"moc/internal/model"
)

func tinyConfig() Config {
	mc := model.TinyMoE(4, 24, 4, 2)
	mc.VocabSize = 32
	return Config{
		Model:          mc,
		Window:         6,
		BatchSize:      16,
		LR:             0.01,
		CapacityFactor: 1.5,
		NoiseStd:       0.1,
		Seed:           7,
	}
}

func newTiny(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Window = 0
	if bad.Validate() == nil {
		t.Fatal("zero window accepted")
	}
	bad2 := good
	bad2.LR = 0
	if bad2.Validate() == nil {
		t.Fatal("zero LR accepted")
	}
	bad3 := good
	bad3.Model.MoEEvery = 0
	if bad3.Validate() == nil {
		t.Fatal("dense model accepted by MoE trainer")
	}
}

func TestModuleInventoryMatchesModel(t *testing.T) {
	cfg := tinyConfig()
	m := newTiny(t, cfg)
	if m.NumMoELayers() != cfg.Model.NumMoELayers() {
		t.Fatalf("MoE layers %d vs config %d", m.NumMoELayers(), cfg.Model.NumMoELayers())
	}
	names := map[string]bool{}
	for _, n := range m.ModuleNames() {
		names[n] = true
	}
	for _, mod := range cfg.Model.Modules() {
		if mod.Name == "embed.pos" {
			continue // the tiny trainer has no positional table
		}
		if !names[mod.Name] {
			t.Errorf("trainer lacks module %q from the model inventory", mod.Name)
		}
	}
	// Expert module name round trip.
	name := m.ExpertModuleName(1, 3)
	l, e, ok := m.IsExpertModule(name)
	if !ok || l != 1 || e != 3 {
		t.Fatalf("expert name round trip: %q -> (%d,%d,%v)", name, l, e, ok)
	}
	if _, _, ok := m.IsExpertModule("layer0.atten"); ok {
		t.Fatal("non-expert module parsed as expert")
	}
}

func TestGradientCheck(t *testing.T) {
	cfg := tinyConfig()
	cfg.NoiseStd = 0
	cfg.CapacityFactor = 0 // deterministic routing, no drops
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("g", cfg.Model.VocabSize, 1)
	batch := corpus.Batch(1, 0, 8, cfg.Window)

	lossAt := func() float64 {
		st, err := m.process(batch, false)
		if err != nil {
			t.Fatal(err)
		}
		return st.Loss
	}
	if _, err := m.process(batch, true); err != nil {
		t.Fatal(err)
	}
	// Spot-check analytic vs numerical gradients across module types.
	checks := []struct {
		module string
		pi, wi int
	}{
		{"embed.token", 0, 5},
		{"layer0.atten", 0, 3},
		{"layer0.moe.gate", 0, 2},
		{"layer0.moe.expert0", 0, 1},
		{"layer0.moe.expert0", 2, 4},
		{"head", 0, 7},
	}
	const eps = 1e-2
	for _, c := range checks {
		ps := m.modules[c.module]
		p := ps[c.pi]
		analytic := float64(p.G.Data[c.wi])
		orig := p.W.Data[c.wi]
		p.W.Data[c.wi] = orig + eps
		up := lossAt()
		p.W.Data[c.wi] = orig - eps
		down := lossAt()
		p.W.Data[c.wi] = orig
		numeric := (up - down) / (2 * eps)
		// Routing may flip for expert/gate params; tolerate generously
		// but demand agreement in sign and magnitude when meaningful.
		diff := math.Abs(analytic - numeric)
		scale := math.Max(math.Abs(analytic), math.Abs(numeric))
		if scale > 1e-4 && diff/scale > 0.15 {
			t.Errorf("%s p%d[%d]: analytic %.6f vs numeric %.6f", c.module, c.pi, c.wi, analytic, numeric)
		}
	}
}

func TestLossDecreases(t *testing.T) {
	cfg := tinyConfig()
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("pretrain", cfg.Model.VocabSize, data.PretrainDomain)
	heldout := corpus.Heldout(cfg.Seed, 128, cfg.Window)
	before, _, err := m.Evaluate(heldout)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 150; it++ {
		batch := corpus.Batch(cfg.Seed, it, cfg.BatchSize, cfg.Window)
		if _, err := m.TrainBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	after, acc, err := m.Evaluate(heldout)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before-0.05 {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", before, after)
	}
	uniform := math.Log(float64(cfg.Model.VocabSize))
	if after >= uniform {
		t.Fatalf("post-training loss %.4f not below uniform %.4f", after, uniform)
	}
	if acc <= 1.0/float64(cfg.Model.VocabSize)*1.5 {
		t.Fatalf("accuracy %.4f barely above chance", acc)
	}
	if m.Iteration() != 150 {
		t.Fatalf("iteration counter = %d", m.Iteration())
	}
}

func TestTrainingDeterministic(t *testing.T) {
	cfg := tinyConfig()
	run := func() float64 {
		m := newTiny(t, cfg)
		corpus := data.NewCorpus("pretrain", cfg.Model.VocabSize, 1)
		var last float64
		for it := 0; it < 30; it++ {
			st, err := m.TrainBatch(corpus.Batch(cfg.Seed, it, cfg.BatchSize, cfg.Window))
			if err != nil {
				t.Fatal(err)
			}
			last = st.Loss
		}
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}

func TestRoutingStatsExposed(t *testing.T) {
	cfg := tinyConfig()
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("x", cfg.Model.VocabSize, 1)
	st, err := m.TrainBatch(corpus.Batch(1, 0, cfg.BatchSize, cfg.Window))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Routings) != m.NumMoELayers() {
		t.Fatalf("routings for %d layers, want %d", len(st.Routings), m.NumMoELayers())
	}
	for l, r := range st.Routings {
		if r.RoutedSlots != cfg.BatchSize*cfg.Model.TopK {
			t.Fatalf("layer %d routed slots %d", l, r.RoutedSlots)
		}
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("x", cfg.Model.VocabSize, 1)
	for it := 0; it < 20; it++ {
		if _, err := m.TrainBatch(corpus.Batch(1, it, cfg.BatchSize, cfg.Window)); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Capture(nil, VariantFull())
	want := m.CloneState()
	wantIter := m.Iteration()

	// Keep training, then restore: all weights must revert exactly.
	for it := 20; it < 30; it++ {
		if _, err := m.TrainBatch(corpus.Batch(1, it, cfg.BatchSize, cfg.Window)); err != nil {
			t.Fatal(err)
		}
	}
	rec := map[string]core.RecoveredModule{}
	for k, b := range snap {
		rec[k] = core.RecoveredModule{Blob: b, Round: 0}
	}
	iter, err := m.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if iter != wantIter {
		t.Fatalf("restored iteration %d, want %d", iter, wantIter)
	}
	got := m.CloneState()
	for k, w := range want {
		g := got[k]
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s[%d] = %v, want %v after restore", k, i, g[i], w[i])
			}
		}
	}
}

func TestPECCaptureOmitsUnselectedExperts(t *testing.T) {
	cfg := tinyConfig()
	m := newTiny(t, cfg)
	sel := core.NewSequentialSelector(m.NumMoELayers(), cfg.Model.NumExperts).Select(0, 1)
	snap := m.Capture(sel, VariantWO())
	for l := 0; l < m.NumMoELayers(); l++ {
		for e := 0; e < cfg.Model.NumExperts; e++ {
			name := m.ExpertModuleName(l, e)
			_, hasW := snap[name+"/w"]
			_, hasO := snap[name+"/opt"]
			want := sel.Contains(l, e)
			if hasW != want || hasO != want {
				t.Fatalf("expert (%d,%d): captured w=%v o=%v, selected=%v", l, e, hasW, hasO, want)
			}
		}
	}
	// Non-expert modules always present.
	for _, name := range []string{"embed.token/w", "head/opt", "layer0.moe.gate/w"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("non-expert key %q missing", name)
		}
	}
	// Variant W keeps all optimizer blobs.
	snapW := m.Capture(sel, VariantW())
	for l := 0; l < m.NumMoELayers(); l++ {
		for e := 0; e < cfg.Model.NumExperts; e++ {
			name := m.ExpertModuleName(l, e)
			if _, ok := snapW[name+"/opt"]; !ok {
				t.Fatalf("variant W dropped optimizer of (%d,%d)", l, e)
			}
		}
	}
}

func TestPECRestoreLeavesStaleExpertsStale(t *testing.T) {
	cfg := tinyConfig()
	cfg.NoiseStd = 0
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("x", cfg.Model.VocabSize, 1)
	for it := 0; it < 10; it++ {
		m.TrainBatch(corpus.Batch(1, it, cfg.BatchSize, cfg.Window))
	}
	sel := core.NewSequentialSelector(m.NumMoELayers(), cfg.Model.NumExperts).Select(0, 1)
	snap := m.Capture(sel, VariantWO())
	for it := 10; it < 20; it++ {
		m.TrainBatch(corpus.Batch(1, it, cfg.BatchSize, cfg.Window))
	}
	current := m.CloneState()
	rec := map[string]core.RecoveredModule{}
	for k, b := range snap {
		rec[k] = core.RecoveredModule{Blob: b}
	}
	if _, err := m.Restore(rec); err != nil {
		t.Fatal(err)
	}
	after := m.CloneState()
	// Unselected experts were not in the checkpoint: their weights must
	// still equal the pre-restore (iteration 20) state.
	unsel := m.ExpertModuleName(0, (0+1)%cfg.Model.NumExperts) // layer 0 selected expert is 0
	stale := false
	for i, v := range after[unsel+"#0"] {
		if v != current[unsel+"#0"][i] {
			stale = true
			break
		}
	}
	if stale {
		t.Fatal("unselected expert was modified by PEC restore")
	}
}

func TestFreezeExpertsKeepsExpertWeights(t *testing.T) {
	cfg := tinyConfig()
	cfg.FreezeExperts = true
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("x", cfg.Model.VocabSize, 1)
	before := m.CloneState()
	for it := 0; it < 10; it++ {
		if _, err := m.TrainBatch(corpus.Batch(1, it, cfg.BatchSize, cfg.Window)); err != nil {
			t.Fatal(err)
		}
	}
	after := m.CloneState()
	expert := m.ExpertModuleName(0, 0)
	for i := range before[expert+"#0"] {
		if before[expert+"#0"][i] != after[expert+"#0"][i] {
			t.Fatal("frozen expert weights changed")
		}
	}
	changed := false
	for i := range before["embed.token#0"] {
		if before["embed.token#0"][i] != after["embed.token#0"][i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("non-expert weights did not train")
	}
}

func TestPersistFilter(t *testing.T) {
	cfg := tinyConfig()
	m := newTiny(t, cfg)
	selSnap := core.NewSequentialSelector(m.NumMoELayers(), cfg.Model.NumExperts).Select(0, 2)
	persistSel := selSnap.Subset(1)
	keep := m.PersistFilter(persistSel, VariantWO())
	// Non-expert and meta keys always pass.
	for _, k := range []string{"embed.token/w", "head/opt", "meta/state"} {
		if !keep(k) {
			t.Fatalf("filter dropped %q", k)
		}
	}
	l0sel := persistSel.Experts[0][0]
	l0other := selSnap.Experts[0][1]
	if !keep(m.ExpertModuleName(0, l0sel) + "/w") {
		t.Fatal("filter dropped the persist-selected expert")
	}
	if keep(m.ExpertModuleName(0, l0other) + "/w") {
		t.Fatal("filter kept an expert outside the persist selection")
	}
	if m.PersistFilter(nil, VariantWO()) != nil {
		t.Fatal("nil selection should produce nil filter (persist everything)")
	}
	// Variant O: weights always persist even for unselected experts.
	keepO := m.PersistFilter(persistSel, VariantO())
	if !keepO(m.ExpertModuleName(0, l0other) + "/w") {
		t.Fatal("variant O must persist all expert weights")
	}
	if keepO(m.ExpertModuleName(0, l0other) + "/opt") {
		t.Fatal("variant O must filter expert optimizer state")
	}
}

func TestEvaluateEmptySetErrors(t *testing.T) {
	m := newTiny(t, tinyConfig())
	if _, _, err := m.Evaluate(nil); err == nil {
		t.Fatal("empty evaluation accepted")
	}
	if _, err := m.TrainBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestRestoreErrors(t *testing.T) {
	m := newTiny(t, tinyConfig())
	if _, err := m.Restore(map[string]core.RecoveredModule{}); err == nil {
		t.Fatal("recovery without meta accepted")
	}
	bad := map[string]core.RecoveredModule{
		"meta/state": {Blob: []byte("garbage")},
	}
	if _, err := m.Restore(bad); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}

func TestAuxLossImprovesBalance(t *testing.T) {
	run := func(coeff float64) float64 {
		cfg := tinyConfig()
		cfg.AuxLossCoeff = coeff
		cfg.CapacityFactor = 0 // observe raw routing preference
		m := newTiny(t, cfg)
		corpus := data.NewCorpus("x", cfg.Model.VocabSize, 1)
		var lastImbalance float64
		for it := 0; it < 120; it++ {
			st, err := m.TrainBatch(corpus.Batch(1, it, 64, cfg.Window))
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, r := range st.Routings {
				sum += r.LoadImbalance()
			}
			lastImbalance = sum / float64(len(st.Routings))
		}
		return lastImbalance
	}
	without := run(0)
	with := run(0.05)
	if with >= without {
		t.Fatalf("aux loss did not improve balance: %.3f (with) vs %.3f (without)", with, without)
	}
}

func TestAuxLossReported(t *testing.T) {
	cfg := tinyConfig()
	cfg.AuxLossCoeff = 0.01
	m := newTiny(t, cfg)
	corpus := data.NewCorpus("x", cfg.Model.VocabSize, 1)
	st, err := m.TrainBatch(corpus.Batch(1, 0, 32, cfg.Window))
	if err != nil {
		t.Fatal(err)
	}
	if st.AuxLoss <= 0 {
		t.Fatalf("aux loss not reported: %v", st.AuxLoss)
	}
	cfg2 := tinyConfig()
	m2 := newTiny(t, cfg2)
	st2, err := m2.TrainBatch(corpus.Batch(1, 0, 32, cfg2.Window))
	if err != nil {
		t.Fatal(err)
	}
	if st2.AuxLoss != 0 {
		t.Fatalf("aux loss reported with coeff 0: %v", st2.AuxLoss)
	}
}
