package data

import (
	"testing"

	"moc/internal/rng"
)

func TestCorpusDeterminism(t *testing.T) {
	a := NewCorpus("x", 64, 5)
	b := NewCorpus("x", 64, 5)
	ra, rb := rng.New(1), rng.New(1)
	sa := a.Sequence(ra, 100)
	sb := b.Sequence(rb, 100)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
}

func TestCorpusDomainsDiffer(t *testing.T) {
	a := NewCorpus("a", 64, 1)
	b := NewCorpus("b", 64, 2)
	ra, rb := rng.New(9), rng.New(9)
	same := 0
	const n = 200
	sa := a.Sequence(ra, n)
	sb := b.Sequence(rb, n)
	for i := range sa {
		if sa[i] == sb[i] {
			same++
		}
	}
	if same > n/2 {
		t.Fatalf("different domains produced %d/%d identical tokens", same, n)
	}
}

func TestTokensInRange(t *testing.T) {
	c := NewCorpus("x", 32, 3)
	r := rng.New(4)
	for _, tok := range c.Sequence(r, 1000) {
		if tok < 0 || tok >= 32 {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

func TestChainIsPredictable(t *testing.T) {
	// The block structure must make the chain far more predictable than
	// uniform: the modal successor should carry much more than 1/vocab
	// probability mass. Verify empirically via bigram counts.
	c := NewCorpus("x", 64, 7)
	r := rng.New(11)
	seq := c.Sequence(r, 20000)
	counts := make(map[[2]int]int)
	prevCount := make(map[int]int)
	for i := 1; i < len(seq); i++ {
		counts[[2]int{seq[i-1], seq[i]}]++
		prevCount[seq[i-1]]++
	}
	// Average max-successor probability across frequent tokens.
	var probSum float64
	var n int
	for prev, total := range prevCount {
		if total < 100 {
			continue
		}
		best := 0
		for next := 0; next < 64; next++ {
			if c := counts[[2]int{prev, next}]; c > best {
				best = c
			}
		}
		probSum += float64(best) / float64(total)
		n++
	}
	if n == 0 {
		t.Fatal("no frequent tokens observed")
	}
	avg := probSum / float64(n)
	if avg < 3.0/64 {
		t.Fatalf("modal successor probability %.3f barely above uniform", avg)
	}
}

func TestBatchReplayable(t *testing.T) {
	c := NewCorpus("x", 64, 1)
	b1 := c.Batch(42, 17, 8, 6)
	b2 := c.Batch(42, 17, 8, 6)
	if len(b1) != 8 {
		t.Fatalf("batch size %d", len(b1))
	}
	for i := range b1 {
		if b1[i].Target != b2[i].Target {
			t.Fatal("batch not replayable")
		}
		for j := range b1[i].Context {
			if b1[i].Context[j] != b2[i].Context[j] {
				t.Fatal("context not replayable")
			}
		}
	}
	b3 := c.Batch(42, 18, 8, 6)
	diff := false
	for i := range b1 {
		if b1[i].Target != b3[i].Target {
			diff = true
		}
	}
	if !diff {
		t.Fatal("consecutive iterations produced identical batches")
	}
}

func TestHeldoutStable(t *testing.T) {
	c := NewCorpus("x", 64, 1)
	h1 := c.Heldout(7, 16, 6)
	h2 := c.Heldout(7, 16, 6)
	for i := range h1 {
		if h1[i].Target != h2[i].Target {
			t.Fatal("heldout set not stable")
		}
	}
}

func TestTasks(t *testing.T) {
	if len(TaskNames()) != 8 {
		t.Fatalf("want 8 downstream tasks, got %d", len(TaskNames()))
	}
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		task := Task(64, i)
		if task.Vocab() != 64 {
			t.Fatalf("task %d vocab %d", i, task.Vocab())
		}
		if seen[task.Name()] {
			t.Fatalf("duplicate task name %s", task.Name())
		}
		seen[task.Name()] = true
	}
}

func TestTaskPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Task(64, 8)
}

func TestCorpusPanicsOnTinyVocab(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCorpus("x", 4, 1)
}

func TestBlend(t *testing.T) {
	a := NewCorpus("a", 64, 1)
	b := NewCorpus("b", 64, 2)
	mix := Blend("mix", a, b, 0.5)
	if mix.Vocab() != 64 || mix.Name() != "mix" {
		t.Fatal("blend metadata wrong")
	}
	// Blended pmf rows must still sum to 1.
	for tok := 0; tok < 64; tok++ {
		var sum float64
		for n := 0; n < 64; n++ {
			sum += mix.probs[tok][n]
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("token %d pmf sums to %v", tok, sum)
		}
	}
	// alpha=1 reproduces a exactly.
	same := Blend("same", a, b, 1)
	for tok := 0; tok < 64; tok++ {
		for n := 0; n < 64; n++ {
			if same.probs[tok][n] != a.probs[tok][n] {
				t.Fatal("alpha=1 blend diverges from a")
			}
		}
	}
}

func TestBlendPanics(t *testing.T) {
	a := NewCorpus("a", 64, 1)
	b := NewCorpus("b", 32, 2)
	for _, f := range []func(){
		func() { Blend("x", a, b, 0.5) },
		func() { Blend("x", a, a, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestTaskTransfersFromPretrain(t *testing.T) {
	// A task blended with the pre-training chain must be statistically
	// closer to it than an unrelated domain is: compare L1 distance of
	// transition rows.
	pre := NewCorpus("pretrain", 64, PretrainDomain)
	task := Task(64, 0)
	other := NewCorpus("other", 64, 99999)
	var dTask, dOther float64
	for tok := 0; tok < 64; tok++ {
		for n := 0; n < 64; n++ {
			dTask += abs(task.probs[tok][n] - pre.probs[tok][n])
			dOther += abs(other.probs[tok][n] - pre.probs[tok][n])
		}
	}
	if dTask >= dOther {
		t.Fatalf("task L1 distance %.2f not below unrelated %.2f", dTask, dOther)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
