// Package data generates the deterministic synthetic corpora that stand in
// for the paper's datasets (Wikitext-2, SlimPajama, ImageNet-1K, Alpaca —
// none of which are available offline). Each corpus is an order-1 Markov
// chain over a small token vocabulary whose transition structure is drawn
// deterministically from a domain seed:
//
//   - the pre-training corpus exercises the language-model loss;
//   - domain-shifted chains provide held-out "downstream tasks" whose
//     next-token accuracy plays the role of the paper's task suites;
//   - a strongly-clustered chain serves as the vision-proxy stream for the
//     SwinV2-MoE experiment (Fig. 14b).
//
// The chains are built with a block structure (tokens cluster into topics
// with rare cross-topic transitions) so that MoE gating specializes
// experts to topics, making PEC's expert-update loss observable — the
// property the accuracy experiments depend on.
package data

import (
	"fmt"

	"moc/internal/rng"
)

// Corpus is a deterministic token stream.
type Corpus struct {
	vocab  int
	topics int
	// probs[t] is the transition distribution from token t; trans[t] its
	// cumulative form used for sampling.
	probs [][]float64
	trans [][]float64
	name  string
}

// NewCorpus builds a block-structured Markov corpus over the given
// vocabulary. The domain seed selects the topic structure; equal seeds
// give identical corpora.
func NewCorpus(name string, vocab int, domain uint64) *Corpus {
	if vocab < 8 {
		panic("data: vocabulary too small")
	}
	r := rng.New(domain ^ 0x9e3779b97f4a7c15)
	topics := 4 + r.Intn(4) // 4..7 topics
	c := &Corpus{vocab: vocab, topics: topics, name: name}
	topicOf := func(tok int) int { return tok * topics / vocab }
	c.probs = make([][]float64, vocab)
	for t := 0; t < vocab; t++ {
		weights := make([]float64, vocab)
		var sum float64
		myTopic := topicOf(t)
		// Each token prefers a sparse set of successors inside its topic;
		// a little mass leaks to other topics so the chain is ergodic.
		for n := 0; n < vocab; n++ {
			w := 0.01 * r.Float64()
			if topicOf(n) == myTopic {
				w += r.Float64() * r.Float64() // skewed intra-topic weights
			}
			weights[n] = w
			sum += w
		}
		for n := range weights {
			weights[n] /= sum
		}
		c.probs[t] = weights
	}
	c.buildCumulative()
	return c
}

func (c *Corpus) buildCumulative() {
	c.trans = make([][]float64, c.vocab)
	for t := 0; t < c.vocab; t++ {
		cum := make([]float64, c.vocab)
		acc := 0.0
		for n := 0; n < c.vocab; n++ {
			acc += c.probs[t][n]
			cum[n] = acc
		}
		cum[c.vocab-1] = 1
		c.trans[t] = cum
	}
}

// Blend builds a corpus whose transition structure interpolates between a
// and b: P = alpha·P_a + (1−alpha)·P_b. Downstream-task proxies are blends
// of the pre-training chain with a task-specific chain, so pre-training
// transfers (above-chance accuracy) while the shift leaves headroom —
// mirroring real benchmark suites.
func Blend(name string, a, b *Corpus, alpha float64) *Corpus {
	if a.vocab != b.vocab {
		panic("data: blending corpora with different vocabularies")
	}
	if alpha < 0 || alpha > 1 {
		panic("data: blend alpha out of [0,1]")
	}
	c := &Corpus{vocab: a.vocab, topics: a.topics, name: name}
	c.probs = make([][]float64, c.vocab)
	for t := 0; t < c.vocab; t++ {
		p := make([]float64, c.vocab)
		for n := 0; n < c.vocab; n++ {
			p[n] = alpha*a.probs[t][n] + (1-alpha)*b.probs[t][n]
		}
		c.probs[t] = p
	}
	c.buildCumulative()
	return c
}

// Name returns the corpus label.
func (c *Corpus) Name() string { return c.name }

// Vocab returns the vocabulary size.
func (c *Corpus) Vocab() int { return c.vocab }

// Topics returns the number of latent topics in the chain.
func (c *Corpus) Topics() int { return c.topics }

// next samples the successor of token t.
func (c *Corpus) next(r *rng.RNG, t int) int {
	u := r.Float64()
	cum := c.trans[t]
	// Binary search over the cumulative distribution.
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Sequence samples a token sequence of the given length.
func (c *Corpus) Sequence(r *rng.RNG, length int) []int {
	seq := make([]int, length)
	tok := r.Intn(c.vocab)
	for i := range seq {
		tok = c.next(r, tok)
		seq[i] = tok
	}
	return seq
}

// Example is one (context, target) training pair: predict the target token
// from the preceding context window.
type Example struct {
	Context []int
	Target  int
}

// Batch samples n examples with the given context window. The iteration
// index makes batches reproducible and replayable: after a fault rollback,
// re-requesting the same iteration yields the same batch, exactly as a
// deterministic data loader would.
func (c *Corpus) Batch(seed uint64, iteration, n, window int) []Example {
	r := rng.New(seed ^ (uint64(iteration)+1)*0xbf58476d1ce4e5b9)
	out := make([]Example, n)
	for i := range out {
		seq := c.Sequence(r, window+1)
		out[i] = Example{Context: seq[:window], Target: seq[window]}
	}
	return out
}

// Heldout returns a fixed validation set: the same for every call with
// equal arguments, disjoint from training batches by seed derivation.
func (c *Corpus) Heldout(seed uint64, n, window int) []Example {
	return c.Batch(seed^0xdeadbeefcafef00d, 0, n, window)
}

// PretrainDomain is the domain seed used for the main pre-training corpus.
const PretrainDomain uint64 = 1

// TaskNames lists the eight downstream-task proxies, named after the
// suites evaluated in Table 3 of the paper.
func TaskNames() []string {
	return []string{"HellaSwag", "PIQA", "WinoGrande", "BoolQ",
		"ARC-E", "OBQA", "RACE", "MathQA"}
}

// Task returns the i-th downstream-task corpus: a domain-shifted chain
// sharing the pre-training vocabulary. Tasks blend the pre-training
// distribution (65%) with a task-specific chain (35%) so that a
// pre-trained model performs above chance and checkpoint-recovery effects
// are visible.
func Task(vocab int, i int) *Corpus {
	names := TaskNames()
	if i < 0 || i >= len(names) {
		panic(fmt.Sprintf("data: task index %d out of range", i))
	}
	pre := NewCorpus("pretrain", vocab, PretrainDomain)
	shift := NewCorpus(names[i], vocab, PretrainDomain+uint64(7+i*13))
	return Blend(names[i], pre, shift, 0.65)
}

// VisionDomain seeds the vision-proxy stream for the SwinV2-MoE
// experiment.
const VisionDomain uint64 = 424242

// FinetuneDomain seeds the instruction-tuning proxy corpus (the Alpaca
// stand-in of Table 4).
const FinetuneDomain uint64 = 515151
