package core

import "math"

// This file implements the fault-tolerance overhead model of §2.3 (Eqs. 3
// and 4) and §6.2.5 (Eqs. 10–16). Times are in seconds; intervals are in
// iterations; overheads are in seconds unless stated otherwise.

// SaveOverhead evaluates Eq. 10: the per-checkpoint overhead of the
// asynchronous snapshot, which stalls training only when the snapshot
// outlasts the forward+backward window of the next iteration.
func SaveOverhead(tSnapshot, tFB float64) float64 {
	if tSnapshot > tFB {
		return tSnapshot - tFB
	}
	return 0
}

// OverheadParams parameterizes the total-overhead model.
type OverheadParams struct {
	// OSave is the overhead of one checkpointing process (seconds).
	OSave float64
	// ORestart is the constant restart overhead per fault (seconds).
	ORestart float64
	// IterTime is the duration of one training iteration (seconds),
	// used to convert lost iterations into seconds.
	IterTime float64
	// Lambda is the fault rate per iteration (§6.2.5: N_fault ≈ λ·I_total).
	Lambda float64
	// ITotal is the total number of training iterations.
	ITotal int
}

// TotalOverhead evaluates Eqs. 12/13: total fault-tolerance overhead for a
// checkpointing interval of ickpt iterations,
//
//	O_ckpt ≈ O_save·I_total/I_ckpt + λ·I_total·(O_restart + I_ckpt/2).
//
// Lost progress (I_ckpt/2 iterations on average) is converted to seconds
// via IterTime.
func (p OverheadParams) TotalOverhead(ickpt int) float64 {
	if ickpt <= 0 {
		return math.Inf(1)
	}
	saves := p.OSave * float64(p.ITotal) / float64(ickpt)
	faults := p.Lambda * float64(p.ITotal) *
		(p.ORestart + float64(ickpt)/2*p.IterTime)
	return saves + faults
}

// OptimalInterval returns the I_ckpt minimizing Eq. 13 (ignoring the
// constant restart term): d/dI [O_save·I_total/I + λ·I_total·I/2·T_iter]
// = 0 ⇒ I* = sqrt(2·O_save / (λ·T_iter)). The result is clamped to ≥ 1.
func (p OverheadParams) OptimalInterval() float64 {
	if p.Lambda <= 0 || p.IterTime <= 0 {
		return math.Inf(1)
	}
	if p.OSave <= 0 {
		return 1
	}
	i := math.Sqrt(2 * p.OSave / (p.Lambda * p.IterTime))
	if i < 1 {
		return 1
	}
	return i
}

// MoCBeatsFull evaluates the condition of Eq. 16: whether the MoC
// configuration (oMoC, iMoC) yields lower overhead than the full
// checkpointing configuration (oFull, iFull) at fault rate lambda, with
// lost iterations converted via iterTime. The constant O_restart term
// cancels (Eq. 15 → Eq. 16).
func MoCBeatsFull(oMoC float64, iMoC int, oFull float64, iFull int, lambda, iterTime float64) bool {
	lhs := oMoC/float64(iMoC) + lambda*float64(iMoC)/2*iterTime
	rhs := oFull/float64(iFull) + lambda*float64(iFull)/2*iterTime
	return lhs < rhs
}

// ExpectedFaults evaluates Eq. 11: N_fault ≈ λ·I_total.
func ExpectedFaults(lambda float64, itotal int) float64 {
	return lambda * float64(itotal)
}
