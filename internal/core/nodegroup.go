package core

import (
	"fmt"

	"moc/internal/storage"
	"moc/internal/storage/cas"
)

// NodeGroup manages one checkpoint agent per simulated node, realizing the
// two-level topology of Fig. 8: each node holds its own CPU-memory
// snapshot store (lost when that node fails) while all nodes share the
// distributed persistent store. Modules are routed to nodes by a placement
// function (experts follow expert parallelism; replicated non-expert state
// is anchored to one node per module for snapshot purposes — any surviving
// replica suffices on recovery, which the placement models by assigning
// non-expert modules round-robin).
type NodeGroup struct {
	agents  []*Agent
	nodeOf  func(module string) int
	persist storage.PersistStore
}

// NewNodeGroup builds a group of nodes over one shared persistent store.
// nodeOf maps a module key to the node hosting its snapshot; it must
// return values in [0, nodes).
func NewNodeGroup(nodes int, persist storage.PersistStore, buffers int, nodeOf func(module string) int) (*NodeGroup, error) {
	return NewNodeGroupWithOptions(nodes, persist, buffers, nodeOf, cas.Options{})
}

// NewNodeGroupWithOptions is NewNodeGroup with explicit checkpoint-store
// tuning (chunk size, chunking mode, persist-pipeline widths —
// Workers/HashWorkers — and recovery fan-out — ReadWorkers) applied to
// every node's agent. An explicit Writer id becomes a per-node prefix
// ("<writer>-n0", "<writer>-n1", …): the nodes share one backend, so
// their manifests must never collide on (round, writer).
func NewNodeGroupWithOptions(nodes int, persist storage.PersistStore, buffers int, nodeOf func(module string) int, opts cas.Options) (*NodeGroup, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("core: node group needs at least one node")
	}
	if nodeOf == nil {
		return nil, fmt.Errorf("core: node group needs a placement function")
	}
	g := &NodeGroup{nodeOf: nodeOf, persist: persist}
	for i := 0; i < nodes; i++ {
		nodeOpts := opts
		if nodeOpts.Writer != "" {
			nodeOpts.Writer = fmt.Sprintf("%s-n%d", nodeOpts.Writer, i)
		}
		a, err := NewAgentWithOptions(storage.NewSnapshotStore(), persist, buffers, nodeOpts)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.agents = append(g.agents, a)
	}
	return g, nil
}

// Nodes returns the node count.
func (g *NodeGroup) Nodes() int { return len(g.agents) }

// clampNode guards against out-of-range placements.
func (g *NodeGroup) clampNode(n int) int {
	if n < 0 {
		return 0
	}
	if n >= len(g.agents) {
		return len(g.agents) - 1
	}
	return n
}

// TrySnapshot splits the captured payload by node and starts each node's
// snapshot. The persist filter applies uniformly. It returns false — and
// starts nothing — if any node cannot accept the snapshot, keeping the
// round atomic across nodes.
func (g *NodeGroup) TrySnapshot(round int, capture func() (CheckpointData, error), keepForPersist func(string) bool) (bool, error) {
	data, err := capture()
	if err != nil {
		return false, err
	}
	parts := make([]CheckpointData, len(g.agents))
	for i := range parts {
		parts[i] = CheckpointData{}
	}
	for k, blob := range data {
		parts[g.clampNode(g.nodeOf(k))][k] = blob
	}
	// All-or-nothing admission: check capacity first (single-threaded
	// driver, so no TOCTOU within the harness).
	for i, a := range g.agents {
		if len(parts[i]) == 0 {
			continue
		}
		if !a.TrySnapshot(round, func() (CheckpointData, error) { return parts[i], nil }, keepForPersist) {
			// Roll forward: nodes already started will complete their
			// (harmless) snapshots; the round simply is not guaranteed
			// complete and recovery falls back to older rounds for the
			// missing modules.
			return false, nil
		}
	}
	return true, nil
}

// WaitSnapshots blocks until every node's snapshot capture completed.
func (g *NodeGroup) WaitSnapshots() error {
	for i, a := range g.agents {
		if err := a.WaitSnapshot(); err != nil {
			return fmt.Errorf("core: node %d snapshot: %w", i, err)
		}
	}
	return nil
}

// Flush drains every node's persist pipeline.
func (g *NodeGroup) Flush() error {
	for i, a := range g.agents {
		if err := a.Flush(); err != nil {
			return fmt.Errorf("core: node %d flush: %w", i, err)
		}
	}
	return nil
}

// FailNodes simulates the given nodes crashing: their in-memory snapshots
// are lost.
func (g *NodeGroup) FailNodes(nodes ...int) {
	for _, n := range nodes {
		g.agents[g.clampNode(n)].FailNode()
	}
}

// LatestCompleteRound returns the newest round fully persisted by every
// node that persisted anything — the cluster-consistent recovery anchor.
func (g *NodeGroup) LatestCompleteRound() int {
	latest := -1
	for _, a := range g.agents {
		r := a.LatestCompleteRound()
		if r < 0 {
			continue
		}
		if latest < 0 || r < latest {
			latest = r
		}
	}
	return latest
}

// Recover assembles the freshest recoverable state across all nodes:
// modules on surviving nodes recover from their node's snapshot when
// fresher (two-level recovery); everything else reads back from the shared
// persistent store. failed marks crashed nodes.
func (g *NodeGroup) Recover(failed map[int]bool) (map[string]RecoveredModule, error) {
	out := map[string]RecoveredModule{}
	for i, a := range g.agents {
		surviving := func(module string) bool { return !failed[i] }
		rec, err := a.Recover(surviving)
		if err != nil {
			return nil, fmt.Errorf("core: node %d recover: %w", i, err)
		}
		for k, m := range rec {
			// The shared persistent store makes every node see every
			// module; keep the freshest copy, preferring snapshots on
			// ties (they are at least as new by construction).
			if prev, ok := out[k]; !ok || m.Round > prev.Round ||
				(m.Round == prev.Round && m.FromSnapshot && !prev.FromSnapshot) {
				out[k] = m
			}
		}
	}
	return out, nil
}

// Stats aggregates all nodes' counters.
func (g *NodeGroup) Stats() AgentStats {
	var s AgentStats
	for _, a := range g.agents {
		as := a.Stats()
		s.SnapshotsStarted += as.SnapshotsStarted
		s.SnapshotsDone += as.SnapshotsDone
		s.Persisted += as.Persisted
		s.Skipped += as.Skipped
		s.SnapshotWait += as.SnapshotWait
	}
	return s
}

// Close shuts down every node's agent, returning the first error.
func (g *NodeGroup) Close() error {
	var first error
	for _, a := range g.agents {
		if a == nil {
			continue
		}
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
