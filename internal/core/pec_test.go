package core

import (
	"testing"
	"testing/quick"
)

func TestSequentialMatchesFig4(t *testing.T) {
	// Fig. 4: N = 3 experts, 4 MoE layers, K_pec = 1.
	// Round 0 saves experts (0, 1, 2, 0) across the four layers;
	// round 1 saves (1, 2, 0, 1).
	s := NewSequentialSelector(4, 3)
	r0 := s.Select(0, 1)
	want0 := []int{0, 1, 2, 0}
	for l, w := range want0 {
		if len(r0.Experts[l]) != 1 || r0.Experts[l][0] != w {
			t.Fatalf("round 0 layer %d: got %v, want [%d]", l, r0.Experts[l], w)
		}
	}
	r1 := s.Select(1, 1)
	want1 := []int{1, 2, 0, 1}
	for l, w := range want1 {
		if r1.Experts[l][0] != w {
			t.Fatalf("round 1 layer %d: got %v, want [%d]", l, r1.Experts[l], w)
		}
	}
}

func TestSequentialFairness(t *testing.T) {
	// Over N/K consecutive rounds, every expert of every layer must be
	// saved exactly once (when K divides N).
	err := quick.Check(func(nPow, kPow, layers uint8) bool {
		n := 1 << (1 + nPow%5) // 2..32
		k := 1 << (kPow % 6)   // 1..32
		if k > n {
			k, n = n, k
		}
		nl := 1 + int(layers%8)
		s := NewSequentialSelector(nl, n)
		counts := make([][]int, nl)
		for l := range counts {
			counts[l] = make([]int, n)
		}
		rounds := n / k
		for r := 0; r < rounds; r++ {
			sel := s.Select(r, k)
			for l, experts := range sel.Experts {
				if len(experts) != k {
					return false
				}
				for _, e := range experts {
					counts[l][e]++
				}
			}
		}
		for l := range counts {
			for _, c := range counts[l] {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialInterleavesAcrossLayers(t *testing.T) {
	// Adjacent layers must select different experts (for K < N), which is
	// what spreads the write load across EP ranks.
	s := NewSequentialSelector(8, 16)
	sel := s.Select(0, 1)
	for l := 1; l < 8; l++ {
		if sel.Experts[l][0] == sel.Experts[l-1][0] {
			t.Fatalf("layers %d and %d selected the same expert %d", l-1, l, sel.Experts[l][0])
		}
	}
}

func TestSelectKClampedToN(t *testing.T) {
	s := NewSequentialSelector(2, 4)
	sel := s.Select(0, 99)
	for l := range sel.Experts {
		if len(sel.Experts[l]) != 4 {
			t.Fatalf("layer %d saved %d experts, want all 4", l, len(sel.Experts[l]))
		}
	}
	if !sel.IsFull(4) {
		t.Fatal("clamped selection should be full")
	}
}

func TestSelectionContains(t *testing.T) {
	var nilSel *Selection
	if !nilSel.Contains(0, 5) {
		t.Fatal("nil selection must contain everything (full checkpoint)")
	}
	sel := &Selection{Experts: [][]int{{1, 3}}}
	if !sel.Contains(0, 1) || !sel.Contains(0, 3) || sel.Contains(0, 2) {
		t.Fatal("Contains membership wrong")
	}
	if sel.Contains(1, 1) || sel.Contains(-1, 0) {
		t.Fatal("Contains out-of-range layer should be false")
	}
}

func TestLoadAwareSelectsHottest(t *testing.T) {
	s := NewLoadAwareSelector(2, 4)
	s.Observe(0, []float64{10, 50, 20, 5})
	s.Observe(1, []float64{1, 2, 3, 100})
	sel := s.Select(0, 2)
	if sel.Experts[0][0] != 1 || sel.Experts[0][1] != 2 {
		t.Fatalf("layer 0 selection %v, want [1 2]", sel.Experts[0])
	}
	if sel.Experts[1][0] != 3 {
		t.Fatalf("layer 1 selection %v, want 3 first", sel.Experts[1])
	}
}

func TestLoadAwareCommitResetsCounters(t *testing.T) {
	s := NewLoadAwareSelector(1, 3)
	s.Observe(0, []float64{100, 1, 1})
	sel := s.Select(0, 1)
	if sel.Experts[0][0] != 0 {
		t.Fatalf("first selection %v, want expert 0", sel.Experts[0])
	}
	s.Committed(sel)
	s.Observe(0, []float64{1, 5, 1})
	sel2 := s.Select(1, 1)
	if sel2.Experts[0][0] != 1 {
		t.Fatalf("after commit, selection %v, want expert 1", sel2.Experts[0])
	}
}

func TestLoadAwareCommitNilResetsAll(t *testing.T) {
	s := NewLoadAwareSelector(1, 2)
	s.Observe(0, []float64{9, 1})
	s.Committed(nil)
	s.Observe(0, []float64{0, 1})
	sel := s.Select(0, 1)
	if sel.Experts[0][0] != 1 {
		t.Fatalf("after full commit, selection %v, want expert 1", sel.Experts[0])
	}
}

func TestLoadAwareEventualCoverage(t *testing.T) {
	// With uniform load and commits, load-aware selection must cycle
	// through all experts rather than starving any.
	s := NewLoadAwareSelector(1, 4)
	saved := map[int]bool{}
	for r := 0; r < 4; r++ {
		s.Observe(0, []float64{1, 1, 1, 1})
		sel := s.Select(r, 1)
		saved[sel.Experts[0][0]] = true
		s.Committed(sel)
	}
	if len(saved) != 4 {
		t.Fatalf("load-aware starved experts: saved %v", saved)
	}
}

func TestFullSelection(t *testing.T) {
	sel := FullSelection(3, 2, 4)
	if !sel.IsFull(4) {
		t.Fatal("FullSelection not full")
	}
	if sel.Round != 3 {
		t.Fatal("round not propagated")
	}
}

func TestSubsetImplementsPersistPEC(t *testing.T) {
	s := NewSequentialSelector(3, 8)
	snap := s.Select(0, 4)
	persist := snap.Subset(1)
	for l := range persist.Experts {
		if len(persist.Experts[l]) != 1 {
			t.Fatalf("persist layer %d has %d experts, want 1", l, len(persist.Experts[l]))
		}
		// persist experts must be a subset of the snapshot experts
		if !snap.Contains(l, persist.Experts[l][0]) {
			t.Fatalf("persist expert %d not in snapshot selection", persist.Experts[l][0])
		}
	}
	if nilSub := (*Selection)(nil).Subset(2); nilSub != nil {
		t.Fatal("Subset of nil should stay nil (full)")
	}
}

func TestSelectPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Select(k=0) did not panic")
		}
	}()
	NewSequentialSelector(1, 4).Select(0, 0)
}

func TestSelectorNames(t *testing.T) {
	if NewSequentialSelector(1, 2).Name() != "sequential" {
		t.Fatal("sequential name")
	}
	if NewLoadAwareSelector(1, 2).Name() != "load-aware" {
		t.Fatal("load-aware name")
	}
}

func TestSelectWithStridePersistFairness(t *testing.T) {
	// Two-level schedule: windows of K_snapshot advancing by K_persist.
	// The persist level (first K_persist of each window) must cover every
	// expert exactly once per N/K_persist rounds.
	err := quick.Check(func(nPow, ksPow, kpPow, layers uint8) bool {
		n := 1 << (2 + nPow%4) // 4..32
		ks := 1 << (ksPow % 5) // 1..16
		kp := 1 << (kpPow % 4) // 1..8
		if ks > n {
			ks = n
		}
		if kp > ks {
			kp = ks
		}
		nl := 1 + int(layers%6)
		s := NewSequentialSelector(nl, n)
		counts := make([][]int, nl)
		for l := range counts {
			counts[l] = make([]int, n)
		}
		rounds := n / kp
		for r := 0; r < rounds; r++ {
			persist := s.SelectWithStride(r, ks, kp).Subset(kp)
			for l, experts := range persist.Experts {
				for _, e := range experts {
					counts[l][e]++
				}
			}
		}
		for l := range counts {
			for _, c := range counts[l] {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectSpreadAtScale(t *testing.T) {
	// One-expert-per-GPU regime: 1024 experts, 24 layers, K = N/8. The
	// per-round union of selected experts must span a wide range of EP
	// ranks, not a narrow contiguous band (the Fig. 13 load-balance
	// requirement).
	const n, layers = 1024, 24
	s := NewSequentialSelector(layers, n)
	sel := s.Select(0, n/8)
	hit := map[int]bool{}
	for _, experts := range sel.Experts {
		for _, e := range experts {
			hit[e] = true
		}
	}
	if len(hit) < n/2 {
		t.Fatalf("round 0 touches only %d of %d experts; load concentrates", len(hit), n)
	}
	// Max experts-per-rank (rank = expert index here) stays near the mean.
	perRank := make([]int, n)
	for _, experts := range sel.Experts {
		for _, e := range experts {
			perRank[e]++
		}
	}
	mean := float64(layers*n/8) / float64(n)
	for e, c := range perRank {
		if float64(c) > 4*mean+1 {
			t.Fatalf("rank %d writes %d expert-layers (mean %.1f): imbalanced", e, c, mean)
		}
	}
}
