package core

import (
	"strings"
	"testing"

	"moc/internal/cluster"
	"moc/internal/model"
	"moc/internal/storage"
)

func rankStores(n int) []storage.PersistStore {
	out := make([]storage.PersistStore, n)
	for i := range out {
		out[i] = storage.NewMemStore()
	}
	return out
}

func smallPlan(t *testing.T, strat Strategy) (*Plan, cluster.Topology) {
	t.Helper()
	cfg := model.TinyMoE(4, 64, 8, 1)
	cfg.VocabSize = 64
	topo := cluster.Topology{Name: "t", NumNodes: 1, GPUsPerNode: 8, DP: 8, TP: 1, PP: 1, EP: 4}
	sel := NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, 2)
	p, err := PlanCheckpoint(topo, cfg, sel, strat)
	if err != nil {
		t.Fatal(err)
	}
	return p, topo
}

func TestWriteReadPlanRoundTrip(t *testing.T) {
	for _, strat := range Strategies() {
		plan, topo := smallPlan(t, strat)
		stores := rankStores(topo.DP)
		m, err := WritePlan(3, plan, stores, nil)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if m.TotalBytes != plan.TotalBytes() {
			t.Fatalf("%v: manifest bytes %d vs plan %d", strat, m.TotalBytes, plan.TotalBytes())
		}
		m2, shards, err := ReadPlan(3, stores)
		if err != nil {
			t.Fatalf("%v: read: %v", strat, err)
		}
		if m2.Strategy != strat.String() {
			t.Fatalf("%v: strategy %q", strat, m2.Strategy)
		}
		var total int64
		for _, b := range shards {
			total += int64(len(b))
		}
		if total != plan.TotalBytes() {
			t.Fatalf("%v: reassembled %d of %d bytes", strat, total, plan.TotalBytes())
		}
	}
}

func TestReadPlanDetectsMissingShard(t *testing.T) {
	plan, topo := smallPlan(t, StrategyEEEN)
	stores := rankStores(topo.DP)
	if _, err := WritePlan(0, plan, stores, nil); err != nil {
		t.Fatal(err)
	}
	// Delete one shard.
	victim := plan.Assignments[len(plan.Assignments)/2]
	if err := stores[victim.Rank].Delete(shardKey(0, victim)); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadPlan(0, stores)
	if err == nil || !strings.Contains(err.Error(), victim.Module) {
		t.Fatalf("missing shard undetected: %v", err)
	}
}

func TestReadPlanDetectsTruncation(t *testing.T) {
	plan, topo := smallPlan(t, StrategyEEAN)
	stores := rankStores(topo.DP)
	if _, err := WritePlan(0, plan, stores, nil); err != nil {
		t.Fatal(err)
	}
	victim := plan.Assignments[0]
	if err := stores[victim.Rank].Put(shardKey(0, victim), []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPlan(0, stores); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation undetected: %v", err)
	}
}

func TestManifestSurvivesRankLoss(t *testing.T) {
	plan, topo := smallPlan(t, StrategyBaseline)
	stores := rankStores(topo.DP)
	if _, err := WritePlan(0, plan, stores, nil); err != nil {
		t.Fatal(err)
	}
	// Rank 0's manifest replica dies; the read must fall through to
	// another rank's copy. (Rank 0's shards stay: only the manifest is
	// lost here — shard loss is the previous test.)
	if err := stores[0].Delete(manifestKey(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPlan(0, stores); err != nil {
		t.Fatalf("manifest replication failed: %v", err)
	}
}

func TestWritePlanErrors(t *testing.T) {
	if _, err := WritePlan(0, nil, rankStores(1), nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	plan, _ := smallPlan(t, StrategyBaseline)
	// Too few stores for the plan's ranks.
	if _, err := WritePlan(0, plan, rankStores(1), nil); err == nil {
		t.Fatal("insufficient stores accepted")
	}
}

func TestReadPlanNoManifest(t *testing.T) {
	if _, _, err := ReadPlan(9, rankStores(2)); err == nil {
		t.Fatal("absent round accepted")
	}
}

func TestWritePlanCustomPayload(t *testing.T) {
	plan, topo := smallPlan(t, StrategyBaseline)
	stores := rankStores(topo.DP)
	if _, err := WritePlan(1, plan, stores, func(a Assignment) []byte {
		return make([]byte, a.Bytes)
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPlan(1, stores); err != nil {
		t.Fatal(err)
	}
}
