package core

import (
	"encoding/json"
	"fmt"

	"moc/internal/storage"
)

// This file executes sharding plans against per-rank stores: the
// distributed write path of fully sharded checkpointing (§4). Each rank
// writes exactly its planned assignments to its own slice of the
// distributed filesystem; a manifest — replicated to every rank so any
// survivor can drive recovery — records the full assignment list, and
// read-back verifies completeness before any state is trusted.

// Manifest describes one distributed checkpoint round.
type Manifest struct {
	Round       int          `json:"round"`
	Strategy    string       `json:"strategy"`
	Assignments []Assignment `json:"assignments"`
	TotalBytes  int64        `json:"total_bytes"`
}

// PayloadFunc supplies the bytes for one assignment. The default (nil)
// synthesizes a deterministic filler of the planned size, which is enough
// for write-path and completeness testing; real deployments plug in the
// serializer.
type PayloadFunc func(a Assignment) []byte

func defaultPayload(a Assignment) []byte {
	b := make([]byte, a.Bytes)
	seed := byte(len(a.Module))
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func shardKey(round int, a Assignment) string {
	return fmt.Sprintf("dist/%06d/rank%d/%s", round, a.Rank, a.Module)
}

func manifestKey(round int) string {
	return fmt.Sprintf("dist/%06d/_manifest", round)
}

// WritePlan executes the plan for one round: every assignment's payload is
// written to its rank's store, and the manifest is replicated to all
// ranks. stores[r] is rank r's persistent store; len(stores) must cover
// every rank in the plan.
func WritePlan(round int, plan *Plan, stores []storage.PersistStore, payload PayloadFunc) (*Manifest, error) {
	if plan == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	if payload == nil {
		payload = defaultPayload
	}
	m := &Manifest{
		Round:       round,
		Strategy:    plan.Strategy.String(),
		Assignments: plan.Assignments,
		TotalBytes:  plan.TotalBytes(),
	}
	for _, a := range plan.Assignments {
		if a.Rank < 0 || a.Rank >= len(stores) {
			return nil, fmt.Errorf("core: assignment %q targets rank %d of %d stores",
				a.Module, a.Rank, len(stores))
		}
		if err := stores[a.Rank].Put(shardKey(round, a), payload(a)); err != nil {
			return nil, fmt.Errorf("core: write %q on rank %d: %w", a.Module, a.Rank, err)
		}
	}
	blob, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("core: encode manifest: %w", err)
	}
	for r, st := range stores {
		if err := st.Put(manifestKey(round), blob); err != nil {
			return nil, fmt.Errorf("core: replicate manifest to rank %d: %w", r, err)
		}
	}
	return m, nil
}

// ReadPlan loads a distributed checkpoint round: the manifest is fetched
// from any surviving rank, then every assignment's shard is read back from
// its rank and size-checked. A missing or truncated shard fails the read
// with the offending module named — an incomplete checkpoint must never be
// silently restored.
func ReadPlan(round int, stores []storage.PersistStore) (*Manifest, map[string][]byte, error) {
	var m *Manifest
	var lastErr error
	for _, st := range stores {
		blob, err := st.Get(manifestKey(round))
		if err != nil {
			lastErr = err
			continue
		}
		var cand Manifest
		if err := json.Unmarshal(blob, &cand); err != nil {
			lastErr = fmt.Errorf("core: decode manifest: %w", err)
			continue
		}
		m = &cand
		break
	}
	if m == nil {
		return nil, nil, fmt.Errorf("core: no readable manifest for round %d: %w", round, lastErr)
	}
	// Shards are keyed by "rank<r>/<module>": the same logical module can
	// legitimately appear on several ranks (optimizer partitions, shard
	// splits), so the module name alone is not unique.
	shards := make(map[string][]byte, len(m.Assignments))
	var total int64
	for _, a := range m.Assignments {
		if a.Rank < 0 || a.Rank >= len(stores) {
			return m, nil, fmt.Errorf("core: manifest assignment %q targets unknown rank %d", a.Module, a.Rank)
		}
		blob, err := stores[a.Rank].Get(shardKey(round, a))
		if err != nil {
			return m, nil, fmt.Errorf("core: shard %q missing on rank %d: %w", a.Module, a.Rank, err)
		}
		if int64(len(blob)) != a.Bytes {
			return m, nil, fmt.Errorf("core: shard %q truncated: %d of %d bytes",
				a.Module, len(blob), a.Bytes)
		}
		shards[fmt.Sprintf("rank%d/%s", a.Rank, a.Module)] = blob
		total += int64(len(blob))
	}
	if total != m.TotalBytes {
		return m, nil, fmt.Errorf("core: checkpoint size mismatch: %d of %d bytes", total, m.TotalBytes)
	}
	return m, shards, nil
}
