package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/storage"
	"moc/internal/storage/cas"
)

// CheckpointData maps module keys (model module names) to serialized
// blobs. It is the unit the checkpoint agent moves between the GPU,
// CPU-memory snapshots, and persistent storage.
type CheckpointData map[string][]byte

// AgentStats summarizes an agent's activity.
type AgentStats struct {
	SnapshotsStarted int
	SnapshotsDone    int
	Persisted        int
	Skipped          int
	// SnapshotWait is the cumulative checkpoint-stall time callers spent
	// in WaitSnapshot (the "S" block of Fig. 3).
	SnapshotWait time.Duration
}

// Agent is the per-node checkpoint manager of §5: it runs the GPU→CPU
// snapshot asynchronously, hands completed snapshots to a background
// persist worker, and maintains the triple-buffer invariant that a
// complete, recovery-consistent checkpoint always exists while at most one
// snapshot and one persist are in flight.
//
// Buffer accounting follows Fig. 9: a buffer is occupied while a snapshot
// is being captured into it, while it waits for or undergoes persistence,
// and while it serves as the recovery buffer; it is freed when a newer
// persist completes and takes over the recovery role.
type Agent struct {
	snap *storage.SnapshotStore
	// store is the content-addressed checkpoint store over the persist
	// backend: module blobs are chunked, deduplicated across rounds, and
	// committed through per-round manifests (the _complete marker of the
	// naive layout is subsumed by manifest presence).
	store *cas.Store

	mu        sync.Mutex
	cond      *sync.Cond
	nbuf      int
	inUse     int
	recovery  bool // a recovery buffer is held
	capturing bool
	capErr    error
	closed    bool
	stats     AgentStats

	// snapRound[k] is the round whose state the snapshot store currently
	// holds for module k.
	snapRound map[string]int
	// persistIndex[k] lists the complete rounds in which module k was
	// persisted, ascending.
	persistIndex map[string][]int
	// completeRounds lists fully persisted rounds, ascending.
	completeRounds []int

	jobs chan persistJob
	wg   sync.WaitGroup
	errs []error
}

type persistJob struct {
	round int
	data  CheckpointData
}

// NewAgent builds an agent over the given snapshot (CPU memory) and
// persistent stores with the given buffer count (the paper uses 3; minimum
// 2). The persist backend is wrapped in a content-addressed store
// (NewAgentWithOptions tunes it). It recovers the persisted-round index
// from the store's manifests, so reopening over an existing PersistStore
// resumes where a previous agent stopped.
func NewAgent(snap *storage.SnapshotStore, persist storage.PersistStore, buffers int) (*Agent, error) {
	return NewAgentWithOptions(snap, persist, buffers, cas.Options{})
}

// NewAgentWithOptions is NewAgent with explicit checkpoint-store tuning
// (chunk size, striped-writer fan-out, writer id).
func NewAgentWithOptions(snap *storage.SnapshotStore, persist storage.PersistStore, buffers int, opts cas.Options) (*Agent, error) {
	if buffers < 2 {
		return nil, fmt.Errorf("core: agent needs at least 2 buffers, got %d", buffers)
	}
	store, err := cas.Open(persist, opts)
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint store: %w", err)
	}
	a := &Agent{
		snap:         snap,
		store:        store,
		nbuf:         buffers,
		snapRound:    make(map[string]int),
		persistIndex: make(map[string][]int),
		jobs:         make(chan persistJob, buffers),
	}
	a.cond = sync.NewCond(&a.mu)
	a.loadIndex()
	if len(a.completeRounds) > 0 {
		a.recovery = true
		a.inUse = 1
	}
	a.wg.Add(1)
	go a.persistLoop()
	return a, nil
}

// loadIndex rebuilds the complete-round and per-module indices from the
// checkpoint store's manifests. Caller must hold a.mu (or have exclusive
// access during construction).
func (a *Agent) loadIndex() {
	a.completeRounds = a.completeRounds[:0]
	a.persistIndex = make(map[string][]int)
	seen := map[int]bool{}
	for _, m := range a.store.Manifests() {
		if !seen[m.Round] {
			seen[m.Round] = true
			a.completeRounds = append(a.completeRounds, m.Round)
		}
		for _, e := range m.Modules {
			a.persistIndex[e.Module] = append(a.persistIndex[e.Module], m.Round)
		}
	}
	sort.Ints(a.completeRounds)
	for mod := range a.persistIndex {
		rounds := a.persistIndex[mod]
		sort.Ints(rounds)
		// A round may carry the module in several writers' manifests;
		// index it once.
		dedup := rounds[:0]
		for i, r := range rounds {
			if i == 0 || rounds[i-1] != r {
				dedup = append(dedup, r)
			}
		}
		a.persistIndex[mod] = dedup
	}
}

// Store exposes the underlying content-addressed checkpoint store
// (read-side: manifests, audit, stats).
func (a *Agent) Store() *cas.Store { return a.store }

// StorageStats returns the checkpoint store's dedup and write counters.
func (a *Agent) StorageStats() cas.Stats { return a.store.Stats() }

// TrySnapshot starts an asynchronous checkpoint of the given round. The
// capture callback runs on the snapshot goroutine and must return a
// consistent copy of the module states (the GPU→CPU copy). keepForPersist
// selects which captured modules the persist level writes (persist-PEC);
// nil persists everything captured.
//
// It returns false — and the trigger is skipped, as in §5.2 — when a
// snapshot is already in flight or no buffer is free.
func (a *Agent) TrySnapshot(round int, capture func() (CheckpointData, error), keepForPersist func(module string) bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || a.capturing || a.inUse >= a.nbuf {
		a.stats.Skipped++
		return false
	}
	a.capturing = true
	a.inUse++
	a.stats.SnapshotsStarted++
	go a.runSnapshot(round, capture, keepForPersist)
	return true
}

func (a *Agent) runSnapshot(round int, capture func() (CheckpointData, error), keep func(string) bool) {
	data, err := capture()
	a.mu.Lock()
	if err != nil {
		a.capErr = err
		a.capturing = false
		a.inUse--
		a.cond.Broadcast()
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()

	// Write the snapshot level: the CPU-memory store always holds the
	// freshest captured copy of each module.
	for k, blob := range data {
		if putErr := a.snap.Put(k, blob); putErr != nil {
			err = putErr
			break
		}
	}

	a.mu.Lock()
	a.capturing = false
	if err != nil {
		a.capErr = err
		a.inUse--
		a.cond.Broadcast()
		a.mu.Unlock()
		return
	}
	a.stats.SnapshotsDone++
	for k := range data {
		a.snapRound[k] = round
	}
	toPersist := make(CheckpointData, len(data))
	for k, blob := range data {
		if keep == nil || keep(k) {
			toPersist[k] = blob
		}
	}
	a.cond.Broadcast()
	a.mu.Unlock()
	a.jobs <- persistJob{round: round, data: toPersist}
}

// persistLoop is the background CPU→storage worker: each job's payload
// goes through the content-addressed store, which dedups unchanged
// modules against every earlier round and fans new chunks across its
// striped writer pool. The manifest write inside WriteRound is the
// round's commit point.
func (a *Agent) persistLoop() {
	defer a.wg.Done()
	for job := range a.jobs {
		var failed error
		mods := make([]string, 0, len(job.data))
		for k := range job.data {
			mods = append(mods, k)
		}
		if _, err := a.store.WriteRound(job.round, job.data); err != nil {
			failed = err
		}
		a.mu.Lock()
		if failed != nil {
			a.errs = append(a.errs, failed)
			a.inUse-- // buffer released without becoming recovery
		} else {
			a.stats.Persisted++
			a.completeRounds = append(a.completeRounds, job.round)
			for _, k := range mods {
				a.persistIndex[k] = append(a.persistIndex[k], job.round)
			}
			if a.recovery {
				a.inUse-- // previous recovery buffer freed
			}
			a.recovery = true
		}
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

// WaitSnapshot blocks until no snapshot capture is in flight — the point
// before the weight update where training must stall if the snapshot has
// not finished (Fig. 3). The stall duration is accumulated in the stats.
func (a *Agent) WaitSnapshot() error {
	//moc:allow walltime core sits below simtime in the import graph (simtime imports core); raw clock is the only option here
	start := time.Now()
	a.mu.Lock()
	for a.capturing {
		a.cond.Wait()
	}
	err := a.capErr
	a.capErr = nil
	a.stats.SnapshotWait += time.Since(start) //moc:allow walltime paired with the WaitSnapshot start read above
	a.mu.Unlock()
	return err
}

// Flush blocks until every started snapshot has been persisted (or
// failed), returning the first persist error if any.
func (a *Agent) Flush() error {
	if err := a.WaitSnapshot(); err != nil {
		return err
	}
	a.mu.Lock()
	for a.stats.Persisted+len(a.errs) < a.stats.SnapshotsDone {
		a.cond.Wait()
	}
	var err error
	if len(a.errs) > 0 {
		err = a.errs[0]
	}
	a.mu.Unlock()
	return err
}

// Close flushes and shuts down the persist worker. The agent must not be
// used afterwards.
func (a *Agent) Close() error {
	err := a.Flush()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return err
	}
	a.closed = true
	a.mu.Unlock()
	close(a.jobs)
	a.wg.Wait()
	return err
}

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// LatestCompleteRound returns the newest fully persisted round, or -1.
func (a *Agent) LatestCompleteRound() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.completeRounds) == 0 {
		return -1
	}
	return a.completeRounds[len(a.completeRounds)-1]
}

// RecoveredModule is one module's restored state.
type RecoveredModule struct {
	Blob []byte
	// Round is the checkpoint round whose state was restored.
	Round int
	// FromSnapshot reports whether the in-memory snapshot (two-level
	// recovery) supplied the state rather than persistent storage.
	FromSnapshot bool
}

// Recover assembles the freshest recoverable state for every module ever
// checkpointed. For modules where snapshotSurvives returns true and the
// in-memory snapshot is at least as fresh as the persisted copy, the
// snapshot is used (two-level recovery, §5.1); otherwise the module's
// newest persisted version no newer than the latest complete round is
// read back from storage. Storage reads fan out across a bounded worker
// pool sized to the store's read concurrency — each worker's chunk
// fetches are verified inside the store — so cold recovery overlaps
// backend latency at both module and chunk granularity.
func (a *Agent) Recover(snapshotSurvives func(module string) bool) (map[string]RecoveredModule, error) {
	a.mu.Lock()
	latest := -1
	if len(a.completeRounds) > 0 {
		latest = a.completeRounds[len(a.completeRounds)-1]
	}
	modules := make(map[string][]int, len(a.persistIndex))
	for k, rounds := range a.persistIndex {
		modules[k] = append([]int(nil), rounds...)
	}
	snapRound := make(map[string]int, len(a.snapRound))
	for k, r := range a.snapRound {
		snapRound[k] = r
	}
	a.mu.Unlock()

	out := make(map[string]RecoveredModule, len(modules))
	type storeRead struct {
		module string
		round  int
	}
	var reads []storeRead
	for k, rounds := range modules {
		persistedRound := -1
		for i := len(rounds) - 1; i >= 0; i-- {
			if rounds[i] <= latest {
				persistedRound = rounds[i]
				break
			}
		}
		if snapshotSurvives != nil && snapshotSurvives(k) {
			if sr, ok := snapRound[k]; ok && sr >= persistedRound {
				blob, err := a.snap.Get(k)
				if err == nil {
					out[k] = RecoveredModule{Blob: blob, Round: sr, FromSnapshot: true}
					continue
				}
			}
		}
		if persistedRound < 0 {
			continue // never made it to a complete checkpoint
		}
		reads = append(reads, storeRead{module: k, round: persistedRound})
	}

	workers := a.store.ReadConcurrency()
	if workers > len(reads) {
		workers = len(reads)
	}
	if workers <= 1 {
		for _, r := range reads {
			blob, err := a.store.ReadModule(r.round, r.module)
			if err != nil {
				return nil, fmt.Errorf("core: recover %s@%d: %w", r.module, r.round, err)
			}
			out[r.module] = RecoveredModule{Blob: blob, Round: r.round}
		}
		return out, nil
	}
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Bool
		outMu  sync.Mutex
	)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reads) || failed.Load() {
					return
				}
				r := reads[i]
				blob, err := a.store.ReadModule(r.round, r.module)
				if err != nil {
					errs[w] = fmt.Errorf("core: recover %s@%d: %w", r.module, r.round, err)
					failed.Store(true)
					return
				}
				outMu.Lock()
				out[r.module] = RecoveredModule{Blob: blob, Round: r.round}
				outMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FailNode simulates the node hosting this agent crashing: all in-memory
// snapshots are lost; persisted state survives.
func (a *Agent) FailNode() {
	a.mu.Lock()
	a.snapRound = make(map[string]int)
	a.mu.Unlock()
	a.snap.Clear()
}
