package core

import (
	"fmt"

	"moc/internal/storage"
	"moc/internal/storage/cas"
)

// Checkpoint maintenance: because PEC persists different experts in
// different rounds, old rounds stay load-bearing for as long as they hold
// some module's newest copy. Compact keeps exactly those copies and lets
// the content-addressed store's refcount garbage collector reclaim
// everything else: superseded manifest entries are dropped, emptied
// manifests deleted, and chunks whose reference count reached zero are
// swept. Chunks shared with a live round survive by construction — their
// refcount never reaches zero — so compaction can never break recovery.
// Verify reads back everything recovery could return (each chunk checked
// against its content address, each blob against the codec CRC) and
// audits the refcounts.

// Compact runs the refcount GC over the checkpoint store, retaining only
// each module's newest persisted copy (the version Recover would read).
// It reports the number of objects removed — superseded manifest entries,
// emptied manifests, and swept chunks. Writers must be idle; callers go
// through Flush first.
func (a *Agent) Compact() (deleted int, err error) {
	st, err := a.CompactStats()
	return st.Removed(), err
}

// CompactStats is Compact with the full GC breakdown.
func (a *Agent) CompactStats() (cas.GCStats, error) {
	a.mu.Lock()
	latest := -1
	if len(a.completeRounds) > 0 {
		latest = a.completeRounds[len(a.completeRounds)-1]
	}
	// newest[k] is the round Recover would read module k from.
	newest := make(map[string]int, len(a.persistIndex))
	for k, rounds := range a.persistIndex {
		for i := len(rounds) - 1; i >= 0; i-- {
			if rounds[i] <= latest {
				newest[k] = rounds[i]
				break
			}
		}
	}
	a.mu.Unlock()

	// Liveness is writer-scoped: this agent judges only the manifests it
	// wrote. Other writers on a shared backend — NodeGroup peers, or
	// other jobs of a fleet store, which reuse the same module NAMES for
	// entirely separate model lineages — are kept unconditionally; only
	// their owner may retire their entries (the fleet service's Retain
	// unions every job's liveness for exactly this reason).
	own := a.store.Writer()
	live := func(round int, writer, module string) bool {
		if writer != own {
			return true
		}
		nr, ok := newest[module]
		return !ok || round >= nr
	}
	keep := func(round int, writer string) bool {
		return writer != own || round == latest
	}
	st, err := a.store.RetainScoped(live, keep)
	if err != nil {
		return st, fmt.Errorf("core: compact: %w", err)
	}

	a.mu.Lock()
	a.loadIndex()
	// The latest round's manifest survives even when emptied, anchoring
	// LatestCompleteRound across the GC (and reopenings).
	if latest >= 0 {
		found := false
		for _, r := range a.completeRounds {
			if r == latest {
				found = true
				break
			}
		}
		if !found {
			a.completeRounds = append(a.completeRounds, latest)
		}
	}
	a.mu.Unlock()
	return st, nil
}

// Verify reads back every blob a Recover call could return, checking
// every chunk against its content address and the assembled blob against
// the storage codec's CRC32, then audits the store's reference counts: a
// chunk referenced by any manifest but absent from the backend fails the
// verification. It returns the number of blobs verified and the audit.
func (a *Agent) Verify() (checked int, err error) {
	checked, _, err = a.VerifyAudit()
	return checked, err
}

// VerifyAudit is Verify returning the refcount audit report alongside.
func (a *Agent) VerifyAudit() (checked int, rep cas.AuditReport, err error) {
	rec, err := a.Recover(nil)
	if err != nil {
		return 0, rep, err
	}
	for k, m := range rec {
		if _, derr := storage.DecodeTensors(m.Blob); derr != nil {
			return checked, rep, fmt.Errorf("core: verify %s@%d: %w", k, m.Round, derr)
		}
		checked++
	}
	rep, err = a.store.Audit()
	if err != nil {
		return checked, rep, fmt.Errorf("core: verify audit: %w", err)
	}
	if len(rep.Missing) > 0 {
		return checked, rep, fmt.Errorf("core: verify: %d referenced chunks missing from the backend (first %s)",
			len(rep.Missing), rep.Missing[0])
	}
	return checked, rep, nil
}

// PersistedBytes reports the physical bytes held by the checkpoint store
// (chunks + manifests) — after dedup and GC, typically far below the
// logical checkpoint volume.
func (a *Agent) PersistedBytes() (int64, error) {
	return a.store.PhysicalBytes()
}
