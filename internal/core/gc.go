package core

import (
	"fmt"
	"strings"

	"moc/internal/storage"
)

// Checkpoint maintenance: because PEC persists different experts in
// different rounds, old rounds stay load-bearing for as long as they hold
// some module's newest copy. Compact deletes exactly the blobs that are
// no longer the newest persisted version of their module, and Verify
// checks the integrity of everything recovery could read.

// Compact removes persisted blobs superseded by newer rounds, plus
// completion markers of rounds left empty. It never touches the blobs a
// Recover call could return. It reports the number of blobs deleted.
func (a *Agent) Compact() (deleted int, err error) {
	a.mu.Lock()
	latest := -1
	if len(a.completeRounds) > 0 {
		latest = a.completeRounds[len(a.completeRounds)-1]
	}
	// newest[k] is the round Recover would read module k from.
	newest := make(map[string]int, len(a.persistIndex))
	for k, rounds := range a.persistIndex {
		for i := len(rounds) - 1; i >= 0; i-- {
			if rounds[i] <= latest {
				newest[k] = rounds[i]
				break
			}
		}
	}
	type target struct {
		key    string
		module string
		round  int
	}
	var victims []target
	roundAlive := map[int]bool{}
	for k, rounds := range a.persistIndex {
		for _, r := range rounds {
			if nr, ok := newest[k]; ok && r < nr {
				victims = append(victims, target{persistKeyFor(r, k), k, r})
			} else {
				roundAlive[r] = true
			}
		}
	}
	a.mu.Unlock()

	for _, v := range victims {
		if derr := a.persist.Delete(v.key); derr != nil {
			return deleted, fmt.Errorf("core: compact %s: %w", v.key, derr)
		}
		deleted++
	}

	a.mu.Lock()
	for k, rounds := range a.persistIndex {
		kept := rounds[:0]
		for _, r := range rounds {
			if nr, ok := newest[k]; !ok || r >= nr {
				kept = append(kept, r)
			}
		}
		a.persistIndex[k] = kept
	}
	// Drop completion markers for rounds that no longer hold any blob,
	// except the latest (which anchors LatestCompleteRound and the
	// recovered iteration).
	var keptRounds []int
	var emptyRounds []int
	for _, r := range a.completeRounds {
		if roundAlive[r] || r == latest {
			keptRounds = append(keptRounds, r)
		} else {
			emptyRounds = append(emptyRounds, r)
		}
	}
	a.completeRounds = keptRounds
	a.mu.Unlock()

	for _, r := range emptyRounds {
		if derr := a.persist.Delete(persistKeyFor(r, completeMarker)); derr != nil {
			return deleted, fmt.Errorf("core: compact marker %d: %w", r, derr)
		}
		deleted++
	}
	return deleted, nil
}

// Verify reads back every blob a Recover call could return and checks it
// decodes cleanly (the storage codec carries a CRC32). It returns the
// number of blobs verified, or an error naming the first corrupt one.
func (a *Agent) Verify() (checked int, err error) {
	rec, err := a.Recover(nil)
	if err != nil {
		return 0, err
	}
	for k, m := range rec {
		if _, derr := storage.DecodeTensors(m.Blob); derr != nil {
			return checked, fmt.Errorf("core: verify %s@%d: %w", k, m.Round, derr)
		}
		checked++
	}
	return checked, nil
}

// PersistedBytes reports the total bytes currently held by the persistent
// store under the checkpoint prefix (diagnostics for Compact).
func (a *Agent) PersistedBytes() (int64, error) {
	keys, err := a.persist.Keys("ckpt/")
	if err != nil {
		return 0, err
	}
	var total int64
	for _, k := range keys {
		if strings.HasSuffix(k, completeMarker) {
			continue
		}
		b, err := a.persist.Get(k)
		if err != nil {
			return 0, err
		}
		total += int64(len(b))
	}
	return total, nil
}
