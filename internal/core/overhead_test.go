package core

import (
	"math"
	"testing"
)

func TestSaveOverheadEq10(t *testing.T) {
	if got := SaveOverhead(3.0, 2.0); got != 1.0 {
		t.Fatalf("snapshot exceeding F&B: overhead %v, want 1", got)
	}
	if got := SaveOverhead(1.5, 2.0); got != 0 {
		t.Fatalf("fully overlapped snapshot: overhead %v, want 0", got)
	}
}

func TestTotalOverheadTradeoff(t *testing.T) {
	p := OverheadParams{OSave: 4, ORestart: 60, IterTime: 2, Lambda: 1e-4, ITotal: 100000}
	// Very small interval: dominated by save cost. Very large: by loss.
	small := p.TotalOverhead(1)
	opt := p.TotalOverhead(int(p.OptimalInterval()))
	large := p.TotalOverhead(100000)
	if !(opt < small && opt < large) {
		t.Fatalf("optimal interval not a minimum: small=%v opt=%v large=%v", small, opt, large)
	}
	if math.IsInf(p.TotalOverhead(0), 1) == false {
		t.Fatal("zero interval must be infinite overhead")
	}
}

func TestOptimalIntervalFormula(t *testing.T) {
	p := OverheadParams{OSave: 8, IterTime: 2, Lambda: 1e-4, ITotal: 1}
	want := math.Sqrt(2 * 8 / (1e-4 * 2))
	if got := p.OptimalInterval(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("I* = %v, want %v", got, want)
	}
	if !math.IsInf(OverheadParams{OSave: 1, IterTime: 1}.OptimalInterval(), 1) {
		t.Fatal("zero fault rate should give infinite interval")
	}
	if got := (OverheadParams{OSave: 0, IterTime: 1, Lambda: 1}).OptimalInterval(); got != 1 {
		t.Fatalf("free checkpoints: interval %v, want 1", got)
	}
	// Clamp at 1.
	if got := (OverheadParams{OSave: 1e-12, IterTime: 10, Lambda: 10}).OptimalInterval(); got != 1 {
		t.Fatalf("interval clamp: %v", got)
	}
}

func TestMoCBeatsFullBothStrategies(t *testing.T) {
	// §6.2.5 strategy (1): same interval, smaller O_save ⇒ MoC wins.
	if !MoCBeatsFull(0.1, 100, 4.0, 100, 1e-4, 2) {
		t.Fatal("smaller O_save at equal interval should win")
	}
	// Strategy (2): equalize O_save/I ratio by shrinking the interval;
	// the loss term then favours MoC.
	if !MoCBeatsFull(0.4, 10, 4.0, 100, 1e-4, 2) {
		t.Fatal("equal ratio with shorter interval should win")
	}
	// Sanity: identical configurations do not beat themselves.
	if MoCBeatsFull(4.0, 100, 4.0, 100, 1e-4, 2) {
		t.Fatal("identical configs must not compare as better")
	}
}

func TestExpectedFaultsEq11(t *testing.T) {
	if got := ExpectedFaults(1e-5, 2_000_000); got != 20 {
		t.Fatalf("expected faults %v, want 20", got)
	}
}

func TestDynamicKDoublesUnderFaults(t *testing.T) {
	// Fig. 15(b): with repeated faults each losing ~0.4% PLT at K=1,
	// Dynamic-K escalates 1 → 2 → 4 and the cumulative PLT stays below
	// the threshold region, while fixed K=1 would grow linearly.
	d := NewDynamicK(16, 1)
	lossAtK := func(k int) float64 { return 0.004 * 16 / float64(k) / 16 } // ∝ 1/k
	var cum float64
	maxK := 1
	for f := 0; f < 32; f++ {
		loss := lossAtK(d.K)
		cum += loss
		k := d.OnFault(loss)
		if k > maxK {
			maxK = k
		}
	}
	if maxK < 2 {
		t.Fatalf("Dynamic-K never escalated (K stayed %d)", maxK)
	}
	if d.CumulativePLT() > PLTThreshold*1.5 {
		t.Fatalf("Dynamic-K cumulative PLT %.4f far above threshold", d.CumulativePLT())
	}
	// Fixed K = 1 comparison: linear growth exceeds the threshold.
	fixed := 0.004 * 32.0
	if fixed <= PLTThreshold {
		t.Fatal("test scenario too mild to distinguish strategies")
	}
	if d.CumulativePLT() >= fixed {
		t.Fatalf("Dynamic-K PLT %.4f should be below fixed-K %.4f", d.CumulativePLT(), fixed)
	}
}

func TestDynamicKCapsAtN(t *testing.T) {
	d := NewDynamicK(8, 1)
	for f := 0; f < 100; f++ {
		d.OnFault(0.01)
	}
	if d.K != 8 {
		t.Fatalf("K = %d, want cap at N = 8", d.K)
	}
	// At K = N faults lose nothing; PLT must stop growing.
	before := d.CumulativePLT()
	d.OnFault(0)
	if d.CumulativePLT() != before {
		t.Fatal("PLT grew at K = N with zero loss")
	}
}

func TestDynamicKIgnoresNegativeLoss(t *testing.T) {
	d := NewDynamicK(8, 2)
	d.OnFault(-1)
	if d.CumulativePLT() != 0 || d.K != 2 {
		t.Fatal("negative loss should be treated as zero")
	}
}

func TestDynamicKPanicsOnBadInit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDynamicK(4, 8)
}
