package core

import (
	"fmt"
	"sort"

	"moc/internal/cluster"
	"moc/internal/model"
)

// Strategy selects a checkpoint sharding method (§4, Fig. 7).
type Strategy int

const (
	// StrategyBaseline reproduces the Megatron-DeepSpeed layout: rank 0
	// saves all non-expert parameters, the ranks of EP group 0 save the
	// full fp16 weights of their hosted experts, and every rank saves its
	// own ZeRO-2 optimizer partition (Fig. 7a).
	StrategyBaseline Strategy = iota
	// StrategyEE adds equal sharding of the expert part: each expert's
	// weights are split evenly across the EP groups hosting its replicas
	// (§4.1, Fig. 7b), while non-expert weights stay on rank 0.
	StrategyEE
	// StrategyEEEN adds equal sharding of the non-expert part at layer
	// granularity across all DP ranks (§4.2).
	StrategyEEEN
	// StrategyEEAN replaces equal non-expert sharding with adaptive
	// sharding: a greedy allocator assigns non-expert modules largest-
	// first to the rank with the least accumulated load including this
	// round's PEC expert writes (§4.3).
	StrategyEEAN
)

func (s Strategy) String() string {
	switch s {
	case StrategyBaseline:
		return "Baseline"
	case StrategyEE:
		return "EE"
	case StrategyEEEN:
		return "EE+EN"
	case StrategyEEAN:
		return "EE+AN"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all sharding strategies in Fig. 10 order.
func Strategies() []Strategy {
	return []Strategy{StrategyBaseline, StrategyEE, StrategyEEEN, StrategyEEAN}
}

// Assignment maps one write obligation to a rank.
type Assignment struct {
	Module string // module name, possibly suffixed with a shard tag
	Rank   int    // DP rank that writes it
	Bytes  int64
}

// Plan is the per-checkpoint write plan: who persists which bytes.
type Plan struct {
	Strategy    Strategy
	PerRank     []int64 // bytes written by each DP rank
	Assignments []Assignment
}

// Bottleneck returns the heaviest rank's byte count and its index, which
// determines the blocking checkpoint duration (§6.2.1).
func (p *Plan) Bottleneck() (bytes int64, rank int) {
	for r, b := range p.PerRank {
		if b > bytes {
			bytes, rank = b, r
		}
	}
	return
}

// TotalBytes returns the sum over ranks.
func (p *Plan) TotalBytes() int64 {
	var t int64
	for _, b := range p.PerRank {
		t += b
	}
	return t
}

// PlanCheckpoint builds the write plan for one checkpoint round. sel
// restricts the expert part (nil = full checkpoint). The plan covers model
// parameters (whose placement the strategies control) and ZeRO-2 optimizer
// partitions (whose placement is fixed by the parallel strategy: each rank
// writes its own partition).
func PlanCheckpoint(topo cluster.Topology, cfg model.Config, sel *Selection, strat Strategy) (*Plan, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MoEEvery > 0 && cfg.NumExperts%topo.EP != 0 {
		return nil, fmt.Errorf("core: %d experts do not divide over EP=%d", cfg.NumExperts, topo.EP)
	}
	p := &Plan{Strategy: strat, PerRank: make([]int64, topo.DP)}
	mods := cfg.Modules()
	epGroups := topo.NumEPGroups()

	add := func(name string, rank int, bytes int64) {
		if bytes <= 0 {
			return
		}
		p.PerRank[rank] += bytes
		p.Assignments = append(p.Assignments, Assignment{Module: name, Rank: rank, Bytes: bytes})
	}

	// --- Optimizer partitions (forced placement under ZeRO-2 + EP). ---
	var neOptBytes int64
	for _, m := range mods {
		switch m.Kind {
		case model.KindNonExpert:
			neOptBytes += m.OptimizerBytes()
		case model.KindExpert:
			if !sel.Contains(m.MoELayer, m.Expert) {
				continue
			}
			// The expert's optimizer state is partitioned across its
			// replicas (one per EP group); each hosting rank writes its
			// own partition.
			per := m.OptimizerBytes() / int64(epGroups)
			for g := 0; g < epGroups; g++ {
				r := topo.RankOfExpert(g, m.Expert, cfg.NumExperts)
				add(m.Name+"/opt", r, per)
			}
		}
	}
	// Non-expert optimizer states are partitioned across all DP ranks.
	perRankNEOpt := neOptBytes / int64(topo.DP)
	for r := 0; r < topo.DP; r++ {
		add("non-expert/opt-partition", r, perRankNEOpt)
	}

	// --- Expert weights. ---
	for _, m := range mods {
		if m.Kind != model.KindExpert || !sel.Contains(m.MoELayer, m.Expert) {
			continue
		}
		switch strat {
		case StrategyBaseline:
			// EP group 0 saves the full expert weights.
			r := topo.RankOfExpert(0, m.Expert, cfg.NumExperts)
			add(m.Name+"/w", r, m.WeightBytes())
		default:
			// Equal expert sharding: split across EP groups.
			per := m.WeightBytes() / int64(epGroups)
			for g := 0; g < epGroups; g++ {
				r := topo.RankOfExpert(g, m.Expert, cfg.NumExperts)
				add(fmt.Sprintf("%s/w.shard%d", m.Name, g), r, per)
			}
		}
	}

	// --- Non-expert weights. ---
	var neMods []model.Module
	for _, m := range mods {
		if m.Kind == model.KindNonExpert {
			neMods = append(neMods, m)
		}
	}
	switch strat {
	case StrategyBaseline, StrategyEE:
		for _, m := range neMods {
			add(m.Name+"/w", 0, m.WeightBytes())
		}
	case StrategyEEEN:
		// Equal sharding at layer granularity: largest-first onto the
		// rank with the least *non-expert* weight load, independent of
		// the expert/optimizer load — a static pattern reusable every
		// round (§4.2).
		assignGreedy(neMods, topo.DP, nil, add)
	case StrategyEEAN:
		// Adaptive sharding: largest-first onto the rank with the least
		// *total* accumulated load including this round's expert writes
		// and optimizer partitions (§4.3).
		assignGreedy(neMods, topo.DP, p.PerRank, add)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", strat)
	}
	return p, nil
}

// assignGreedy distributes the given non-expert modules over dp ranks,
// largest module first, always choosing the rank with the smallest load.
// If base is non-nil it seeds the load with the already-planned per-rank
// bytes (adaptive sharding); otherwise loads start at zero (equal
// sharding).
func assignGreedy(mods []model.Module, dp int, base []int64, add func(string, int, int64)) {
	order := make([]model.Module, len(mods))
	copy(order, mods)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Params > order[j].Params })
	load := make([]int64, dp)
	if base != nil {
		copy(load, base)
	}
	for _, m := range order {
		best := 0
		for r := 1; r < dp; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		load[best] += m.WeightBytes()
		add(m.Name+"/w", best, m.WeightBytes())
	}
}

// IdealRankBytes evaluates Eq. 8: the ideal per-rank checkpoint workload
// under fully sharded checkpointing,
//
//	C_rank ≈ (P_ne + P_e)·B_o / D_ep + P_ne·B_w / D_dp + P_e·B_w / D_ep.
func IdealRankBytes(topo cluster.Topology, cfg model.Config) int64 {
	ne, e := cfg.ParamCounts()
	return (ne+e)*model.BytesOptimizer/int64(topo.EP) +
		ne*model.BytesWeight/int64(topo.DP) +
		e*model.BytesWeight/int64(topo.EP)
}

// PECImbalanced evaluates Eq. 9: whether PEC with kpec saved experts per
// MoE layer produces an imbalanced expert checkpointing workload across
// ranks for the given parallel degrees.
func PECImbalanced(kpec, numMoELayers, dep, ddp int) bool {
	if dep <= 0 || ddp <= 0 || dep > ddp {
		return true
	}
	total := kpec * numMoELayers
	if total%dep != 0 {
		return true
	}
	groups := ddp / dep
	if groups == 0 {
		return true
	}
	return (total/dep)%groups != 0
}
