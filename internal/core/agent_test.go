package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"moc/internal/storage"
)

func newTestAgent(t *testing.T, buffers int) (*Agent, *storage.SnapshotStore, *storage.MemStore) {
	t.Helper()
	snap := storage.NewSnapshotStore()
	persist := storage.NewMemStore()
	a, err := NewAgent(snap, persist, buffers)
	if err != nil {
		t.Fatal(err)
	}
	return a, snap, persist
}

func blobData(kv ...string) CheckpointData {
	d := CheckpointData{}
	for i := 0; i+1 < len(kv); i += 2 {
		d[kv[i]] = []byte(kv[i+1])
	}
	return d
}

func TestAgentSnapshotAndPersist(t *testing.T) {
	a, snap, persist := newTestAgent(t, 3)
	ok := a.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("m1", "v0-m1", "m2", "v0-m2"), nil
	}, nil)
	if !ok {
		t.Fatal("snapshot refused with free buffers")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshot level holds both modules.
	if b, err := snap.Get("m1"); err != nil || string(b) != "v0-m1" {
		t.Fatalf("snapshot m1: %q %v", b, err)
	}
	// Persist level committed one manifest listing both modules (manifest
	// presence is the round's completion marker).
	keys, _ := persist.Keys("cas/manifests/000000.")
	if len(keys) != 1 {
		t.Fatalf("manifest keys: %v", keys)
	}
	ms := a.Store().ManifestsForRound(0)
	if len(ms) != 1 || len(ms[0].Modules) != 2 {
		t.Fatalf("round 0 manifests: %+v", ms)
	}
	if a.LatestCompleteRound() != 0 {
		t.Fatalf("latest complete round = %d", a.LatestCompleteRound())
	}
	st := a.Stats()
	if st.SnapshotsDone != 1 || st.Persisted != 1 || st.Skipped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAgentPersistFilterImplementsPersistPEC(t *testing.T) {
	a, snap, _ := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("expert0", "e0", "expert1", "e1", "nonexpert", "ne"), nil
	}, func(module string) bool { return module != "expert1" })
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshot level has all three; persist level lacks expert1.
	if _, err := snap.Get("expert1"); err != nil {
		t.Fatal("snapshot level should hold expert1")
	}
	if _, err := a.Store().ReadModule(0, "expert1"); err == nil {
		t.Fatal("persist level should not hold expert1")
	}
	if _, err := a.Store().ReadModule(0, "expert0"); err != nil {
		t.Fatal("persist level should hold expert0")
	}
}

func TestAgentRecoverUnionAcrossRounds(t *testing.T) {
	// PEC persists different experts in different rounds; recovery must
	// assemble the newest persisted version of each module.
	a, _, _ := newTestAgent(t, 3)
	steps := []struct {
		round int
		data  CheckpointData
	}{
		{0, blobData("ne", "ne@0", "e0", "e0@0")},
		{1, blobData("ne", "ne@1", "e1", "e1@1")},
		{2, blobData("ne", "ne@2", "e0", "e0@2")},
	}
	for _, s := range steps {
		if !a.TrySnapshot(s.round, func() (CheckpointData, error) { return s.data, nil }, nil) {
			t.Fatalf("round %d refused", s.round)
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	defer a.Close()
	rec, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		blob  string
		round int
	}{
		"ne": {"ne@2", 2}, "e0": {"e0@2", 2}, "e1": {"e1@1", 1},
	}
	for k, w := range want {
		got, ok := rec[k]
		if !ok {
			t.Fatalf("module %s missing from recovery", k)
		}
		if string(got.Blob) != w.blob || got.Round != w.round {
			t.Fatalf("%s: got %q@%d, want %q@%d", k, got.Blob, got.Round, w.blob, w.round)
		}
		if got.FromSnapshot {
			t.Fatalf("%s: storage-only recovery used a snapshot", k)
		}
	}
}

func TestAgentTwoLevelRecoveryPrefersFreshSnapshots(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	// Round 0: persist everything. Round 1: snapshot e0 fresh but persist
	// only ne (persist-PEC).
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("ne", "ne@0", "e0", "e0@0"), nil
	}, nil)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	a.TrySnapshot(1, func() (CheckpointData, error) {
		return blobData("ne", "ne@1", "e0", "e0@1"), nil
	}, func(m string) bool { return m == "ne" })
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Storage-only recovery: e0 rolls back to round 0.
	rec, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["e0"].Blob) != "e0@0" {
		t.Fatalf("storage recovery e0 = %q, want e0@0", rec["e0"].Blob)
	}
	// Two-level recovery with surviving snapshots: e0 restored at round 1.
	rec2, err := a.Recover(func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if string(rec2["e0"].Blob) != "e0@1" || !rec2["e0"].FromSnapshot {
		t.Fatalf("two-level recovery e0 = %+v, want snapshot e0@1", rec2["e0"])
	}
}

func TestAgentFailNodeDropsSnapshots(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("ne", "ne@0"), nil
	}, nil)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	a.TrySnapshot(1, func() (CheckpointData, error) {
		return blobData("ne", "ne@1"), nil
	}, func(string) bool { return false }) // snapshot-only round
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.FailNode()
	rec, err := a.Recover(func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// The fresh snapshot died with the node; only round 0 is recoverable.
	if string(rec["ne"].Blob) != "ne@0" || rec["ne"].FromSnapshot {
		t.Fatalf("after node failure: %+v, want persisted ne@0", rec["ne"])
	}
}

func TestAgentSkipsWhenBusy(t *testing.T) {
	a, _, _ := newTestAgent(t, 2)
	release := make(chan struct{})
	a.TrySnapshot(0, func() (CheckpointData, error) {
		<-release
		return blobData("m", "v"), nil
	}, nil)
	// A second trigger while capturing must be skipped.
	if a.TrySnapshot(1, func() (CheckpointData, error) { return nil, nil }, nil) {
		t.Fatal("concurrent snapshot accepted")
	}
	close(release)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
}

func TestAgentBufferExhaustionSkips(t *testing.T) {
	// Two buffers: after one persisted checkpoint (recovery buffer held)
	// and one snapshot captured but stuck in a slow persist, a third
	// trigger must be refused.
	snap := storage.NewSnapshotStore()
	persist := &slowStore{MemStore: storage.NewMemStore(), gate: make(chan struct{})}
	a, err := NewAgent(snap, persist, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.TrySnapshot(0, func() (CheckpointData, error) { return blobData("m", "v0"), nil }, nil)
	if err := a.WaitSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Persist of round 0 is now blocked in the slow store. One buffer is
	// occupied by the persist-in-flight; with nbuf=2 one more trigger can
	// start, then further triggers are refused.
	started := a.TrySnapshot(1, func() (CheckpointData, error) { return blobData("m", "v1"), nil }, nil)
	if !started {
		t.Fatal("second snapshot should start (one free buffer)")
	}
	if err := a.WaitSnapshot(); err != nil {
		t.Fatal(err)
	}
	if a.TrySnapshot(2, func() (CheckpointData, error) { return blobData("m", "v2"), nil }, nil) {
		t.Fatal("third snapshot accepted with exhausted buffers")
	}
	close(persist.gate)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Persisted != 2 || st.Skipped != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// slowStore blocks the first Put until gated open.
type slowStore struct {
	*storage.MemStore
	gate chan struct{}
	once atomic.Bool
}

func (s *slowStore) Put(key string, data []byte) error {
	if s.once.CompareAndSwap(false, true) {
		<-s.gate
	}
	return s.MemStore.Put(key, data)
}

func TestAgentCaptureErrorSurfacesInWait(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return nil, fmt.Errorf("CUDA OOM")
	}, nil)
	err := a.WaitSnapshot()
	if err == nil || !strings.Contains(err.Error(), "CUDA OOM") {
		t.Fatalf("capture error not surfaced: %v", err)
	}
	// The buffer must be released so later snapshots work.
	if !a.TrySnapshot(1, func() (CheckpointData, error) { return blobData("m", "v"), nil }, nil) {
		t.Fatal("agent stuck after capture error")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAgentReopenRecoversIndex(t *testing.T) {
	snap := storage.NewSnapshotStore()
	persist := storage.NewMemStore()
	a, err := NewAgent(snap, persist, 3)
	if err != nil {
		t.Fatal(err)
	}
	a.TrySnapshot(7, func() (CheckpointData, error) { return blobData("ne", "x"), nil }, nil)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh agent over the same persist store (post-restart) must see
	// the completed round.
	b, err := NewAgent(storage.NewSnapshotStore(), persist, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.LatestCompleteRound() != 7 {
		t.Fatalf("reopened latest round = %d, want 7", b.LatestCompleteRound())
	}
	rec, err := b.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["ne"].Blob) != "x" {
		t.Fatalf("reopened recovery: %+v", rec)
	}
}

func TestAgentRejectsTooFewBuffers(t *testing.T) {
	_, err := NewAgent(storage.NewSnapshotStore(), storage.NewMemStore(), 1)
	if err == nil {
		t.Fatal("1 buffer accepted")
	}
}

func TestAgentSnapshotWaitMeasured(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) {
		time.Sleep(30 * time.Millisecond) //moc:allow walltime deliberate slow snapshot (in-package test cannot import simtime: import cycle); the wait must be measured
		return blobData("m", "v"), nil
	}, nil)
	if err := a.WaitSnapshot(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.SnapshotWait < 20*time.Millisecond {
		t.Fatalf("snapshot wait %v not measured", st.SnapshotWait)
	}
	a.Close()
}

func TestAgentManyRoundsStress(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	accepted := 0
	for r := 0; r < 50; r++ {
		data := blobData("ne", fmt.Sprintf("ne@%d", r), fmt.Sprintf("e%d", r%4), "x")
		if a.TrySnapshot(r, func() (CheckpointData, error) { return data, nil }, nil) {
			accepted++
		}
		if err := a.WaitSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Persisted != accepted || accepted == 0 {
		t.Fatalf("persisted %d of %d accepted", st.Persisted, accepted)
	}
	rec, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(rec["ne"].Blob); got == "" {
		t.Fatal("non-expert module missing after stress run")
	}
}
