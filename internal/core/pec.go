// Package core implements the paper's contribution: the Mixture-of-
// Checkpoint System. It contains Partial Experts Checkpointing (PEC, §3),
// the Proportion-of-Lost-Tokens metric (Eq. 7), the fully sharded
// checkpointing planners (§4), the two-level checkpointing management with
// triple buffering (§5), the Dynamic-K controller (§5.3), and the fault-
// tolerance overhead model (§2.3, §6.2.5).
//
// The package is substrate-agnostic: it plans and accounts over module
// inventories (internal/model) and topologies (internal/cluster), executes
// against storage interfaces (internal/storage), and is driven either by
// the real trainer (internal/train) or the timing simulator
// (internal/simtime).
package core

import "fmt"

// Selection records, for one checkpoint round, which experts of each MoE
// layer are saved. Experts[l] lists the expert indices saved for the l-th
// MoE layer (0-based among MoE layers).
type Selection struct {
	Round   int
	Experts [][]int
}

// Contains reports whether expert e of MoE layer l is saved.
func (s *Selection) Contains(l, e int) bool {
	if s == nil {
		return true // nil Selection means "full checkpoint"
	}
	if l < 0 || l >= len(s.Experts) {
		return false
	}
	for _, x := range s.Experts[l] {
		if x == e {
			return true
		}
	}
	return false
}

// IsFull reports whether the selection saves every expert (or is nil).
func (s *Selection) IsFull(numExperts int) bool {
	if s == nil {
		return true
	}
	for _, layer := range s.Experts {
		if len(layer) < numExperts {
			return false
		}
	}
	return true
}

// Selector chooses which K experts to save per MoE layer at each round.
type Selector interface {
	// Select returns the selection for the given round, saving k of n
	// experts in each of numMoELayers MoE layers.
	Select(round, k int) *Selection
	// Name identifies the selection policy.
	Name() string
}

// SequentialSelector implements the paper's sequential selection (§3.2,
// Fig. 4): expert indices advance round-robin, with an interleaved offset
// across MoE layers so that the per-round checkpointing workload spreads
// across EP ranks. For layer l at round t with fan-out k, the saved experts
// are {(l + t·k + m) mod n : m ∈ [0, k)}.
type SequentialSelector struct {
	NumMoELayers int
	NumExperts   int
}

// NewSequentialSelector constructs a sequential selector.
func NewSequentialSelector(numMoELayers, numExperts int) *SequentialSelector {
	if numMoELayers <= 0 || numExperts <= 0 {
		panic("core: sequential selector needs positive layer and expert counts")
	}
	return &SequentialSelector{NumMoELayers: numMoELayers, NumExperts: numExperts}
}

// Name implements Selector.
func (s *SequentialSelector) Name() string { return "sequential" }

// Select implements Selector.
func (s *SequentialSelector) Select(round, k int) *Selection {
	return s.SelectWithStride(round, k, k)
}

// SelectWithStride selects k experts per layer with the window start
// advancing by stride each round. Two-level PEC uses stride = K_persist
// with k = K_snapshot: the persist level (the first K_persist experts of
// each window, via Subset) then rotates fairly through all experts, while
// the snapshot level covers a superset each round. A plain single-level
// schedule uses stride = k.
//
// Layer windows are offset by max(1, N / NumMoELayers) per MoE layer so
// the round's write load spreads across all EP ranks even when the expert
// count dwarfs the layer count (the one-expert-per-GPU scaling regime):
// with few experts this degenerates to the unit offset of Fig. 4.
func (s *SequentialSelector) SelectWithStride(round, k, stride int) *Selection {
	if k <= 0 || stride <= 0 {
		panic(fmt.Sprintf("core: Select with k=%d stride=%d", k, stride))
	}
	if k > s.NumExperts {
		k = s.NumExperts
	}
	layerOffset := s.NumExperts / s.NumMoELayers
	if layerOffset < 1 {
		layerOffset = 1
	}
	sel := &Selection{Round: round, Experts: make([][]int, s.NumMoELayers)}
	for l := 0; l < s.NumMoELayers; l++ {
		experts := make([]int, 0, k)
		start := (l*layerOffset + round*stride) % s.NumExperts
		for m := 0; m < k; m++ {
			experts = append(experts, (start+m)%s.NumExperts)
		}
		sel.Experts[l] = experts
	}
	return sel
}

// LoadAwareSelector implements the paper's load-aware selection (§3.2): at
// each round it saves the k experts per layer with the largest number of
// unsaved token updates. It must be fed routing statistics via Observe and
// notified of completed checkpoints via Committed.
type LoadAwareSelector struct {
	NumMoELayers int
	NumExperts   int
	// unsaved[l][e] counts tokens processed by expert e of layer l since
	// that expert was last checkpointed.
	unsaved [][]float64
}

// NewLoadAwareSelector constructs a load-aware selector with zeroed
// counters.
func NewLoadAwareSelector(numMoELayers, numExperts int) *LoadAwareSelector {
	if numMoELayers <= 0 || numExperts <= 0 {
		panic("core: load-aware selector needs positive layer and expert counts")
	}
	u := make([][]float64, numMoELayers)
	for l := range u {
		u[l] = make([]float64, numExperts)
	}
	return &LoadAwareSelector{NumMoELayers: numMoELayers, NumExperts: numExperts, unsaved: u}
}

// Name implements Selector.
func (s *LoadAwareSelector) Name() string { return "load-aware" }

// Observe adds per-expert token counts for one training step of MoE layer l.
func (s *LoadAwareSelector) Observe(l int, perExpert []float64) {
	if l < 0 || l >= s.NumMoELayers {
		panic(fmt.Sprintf("core: Observe layer %d out of range", l))
	}
	for e, c := range perExpert {
		if e < s.NumExperts {
			s.unsaved[l][e] += c
		}
	}
}

// Committed marks the experts in sel as saved, resetting their unsaved
// counters.
func (s *LoadAwareSelector) Committed(sel *Selection) {
	if sel == nil {
		for l := range s.unsaved {
			for e := range s.unsaved[l] {
				s.unsaved[l][e] = 0
			}
		}
		return
	}
	for l, experts := range sel.Experts {
		if l >= s.NumMoELayers {
			continue
		}
		for _, e := range experts {
			if e < s.NumExperts {
				s.unsaved[l][e] = 0
			}
		}
	}
}

// Select implements Selector: the k experts with the most unsaved updates,
// ties broken toward the lower expert index for determinism.
func (s *LoadAwareSelector) Select(round, k int) *Selection {
	if k <= 0 {
		panic(fmt.Sprintf("core: Select with k=%d", k))
	}
	if k > s.NumExperts {
		k = s.NumExperts
	}
	sel := &Selection{Round: round, Experts: make([][]int, s.NumMoELayers)}
	for l := 0; l < s.NumMoELayers; l++ {
		taken := make([]bool, s.NumExperts)
		experts := make([]int, 0, k)
		for m := 0; m < k; m++ {
			best := -1
			for e := 0; e < s.NumExperts; e++ {
				if taken[e] {
					continue
				}
				if best < 0 || s.unsaved[l][e] > s.unsaved[l][best] {
					best = e
				}
			}
			taken[best] = true
			experts = append(experts, best)
		}
		sel.Experts[l] = experts
	}
	return sel
}

// FullSelection returns a selection saving all numExperts experts in every
// layer, used by full-checkpoint baselines so downstream code has one path.
func FullSelection(round, numMoELayers, numExperts int) *Selection {
	sel := &Selection{Round: round, Experts: make([][]int, numMoELayers)}
	for l := range sel.Experts {
		all := make([]int, numExperts)
		for e := range all {
			all[e] = e
		}
		sel.Experts[l] = all
	}
	return sel
}

// Subset returns the experts of sel restricted to those also present in
// keep, per layer. It implements the persist-PEC refinement (§5.1): the
// persist level selects K_persist experts out of the K_snapshot experts
// already present in CPU memory.
func (s *Selection) Subset(k int) *Selection {
	if s == nil {
		return nil
	}
	out := &Selection{Round: s.Round, Experts: make([][]int, len(s.Experts))}
	for l, experts := range s.Experts {
		n := k
		if n > len(experts) {
			n = len(experts)
		}
		out.Experts[l] = append([]int(nil), experts[:n]...)
	}
	return out
}
