package core

import (
	"strings"
	"testing"

	"moc/internal/storage"
	"moc/internal/storage/cas"
)

// hashNode places expert modules by expert index parity and non-expert
// modules on node 0, a simple two-node layout for tests.
func twoNodePlacement(module string) int {
	if strings.Contains(module, "expertB") {
		return 1
	}
	return 0
}

func newGroup(t *testing.T) (*NodeGroup, *storage.MemStore) {
	t.Helper()
	persist := storage.NewMemStore()
	g, err := NewNodeGroup(2, persist, 3, twoNodePlacement)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, persist
}

func TestNodeGroupSplitsByPlacement(t *testing.T) {
	g, persist := newGroup(t)
	ok, err := g.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("ne", "ne@0", "expertA", "a@0", "expertB", "b@0"), nil
	}, nil)
	if err != nil || !ok {
		t.Fatalf("snapshot: ok=%v err=%v", ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	// Both nodes persisted into the shared store: two manifests for the
	// round (one per node's writer id), no collision.
	keys, _ := persist.Keys("cas/manifests/000000.")
	if len(keys) != 2 {
		t.Fatalf("round 0 manifests: %v", keys)
	}
	if g.LatestCompleteRound() != 0 {
		t.Fatalf("latest round %d", g.LatestCompleteRound())
	}
	rec, err := g.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ne", "expertA", "expertB"} {
		if _, ok := rec[k]; !ok {
			t.Fatalf("module %s missing from group recovery", k)
		}
	}
}

func TestNodeGroupTwoLevelRecoveryAcrossNodes(t *testing.T) {
	g, _ := newGroup(t)
	// Round 0: persist everything. Round 1: snapshot-only (nothing kept
	// for persist), so the snapshot level is fresher.
	if ok, err := g.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("ne", "ne@0", "expertA", "a@0", "expertB", "b@0"), nil
	}, nil); err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if ok, err := g.TrySnapshot(1, func() (CheckpointData, error) {
		return blobData("ne", "ne@1", "expertA", "a@1", "expertB", "b@1"), nil
	}, func(string) bool { return false }); err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	// Node 1 fails: expertB's fresh snapshot dies; expertA and ne survive
	// on node 0.
	g.FailNodes(1)
	rec, err := g.Recover(map[int]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["expertA"].Blob) != "a@1" || !rec["expertA"].FromSnapshot {
		t.Fatalf("expertA should recover from node 0's snapshot: %+v", rec["expertA"])
	}
	if string(rec["expertB"].Blob) != "b@0" || rec["expertB"].FromSnapshot {
		t.Fatalf("expertB should fall back to storage round 0: %+v", rec["expertB"])
	}
	if string(rec["ne"].Blob) != "ne@1" {
		t.Fatalf("ne should recover from surviving snapshot: %+v", rec["ne"])
	}
}

func TestNodeGroupAllNodesFailStorageOnly(t *testing.T) {
	g, _ := newGroup(t)
	if ok, err := g.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("ne", "ne@0", "expertB", "b@0"), nil
	}, nil); err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if ok, err := g.TrySnapshot(1, func() (CheckpointData, error) {
		return blobData("ne", "ne@1", "expertB", "b@1"), nil
	}, func(string) bool { return false }); err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	g.FailNodes(0, 1)
	rec, err := g.Recover(map[int]bool{0: true, 1: true})
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range rec {
		if m.FromSnapshot {
			t.Fatalf("%s recovered from a snapshot after total failure", k)
		}
		if m.Round != 0 {
			t.Fatalf("%s recovered round %d, want persisted round 0", k, m.Round)
		}
	}
}

func TestNodeGroupCaptureError(t *testing.T) {
	g, _ := newGroup(t)
	if ok, err := g.TrySnapshot(0, func() (CheckpointData, error) {
		return nil, storage.ErrNotFound
	}, nil); err == nil || ok {
		t.Fatalf("capture error not surfaced: ok=%v err=%v", ok, err)
	}
}

func TestNodeGroupStatsAggregate(t *testing.T) {
	g, _ := newGroup(t)
	g.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("ne", "x", "expertB", "y"), nil
	}, nil)
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Persisted != 2 { // one persisted round per node
		t.Fatalf("aggregate persisted %d, want 2", st.Persisted)
	}
}

func TestNodeGroupValidation(t *testing.T) {
	if _, err := NewNodeGroup(0, storage.NewMemStore(), 3, twoNodePlacement); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewNodeGroup(2, storage.NewMemStore(), 3, nil); err == nil {
		t.Fatal("nil placement accepted")
	}
	if _, err := NewNodeGroup(2, storage.NewMemStore(), 1, twoNodePlacement); err == nil {
		t.Fatal("too-few buffers accepted")
	}
}

func TestNodeGroupPlacementClamped(t *testing.T) {
	persist := storage.NewMemStore()
	g, err := NewNodeGroup(2, persist, 3, func(string) int { return 99 })
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if ok, err := g.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("m", "v"), nil
	}, nil); err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := g.Recover(nil)
	if err != nil || len(rec) != 1 {
		t.Fatalf("clamped placement recovery: %v %v", rec, err)
	}
}

func TestNodeGroupPlumbsStoreOptions(t *testing.T) {
	// Chunking mode (and the rest of the cas tuning) must reach every
	// node's agent, and an explicit writer id must fan out to distinct
	// per-node ids — the nodes share one backend.
	persist := storage.NewMemStore()
	g, err := NewNodeGroupWithOptions(2, persist, 3, twoNodePlacement,
		cas.Options{Chunking: cas.ChunkingCDC, Writer: "grp"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	writers := map[string]bool{}
	for i, a := range g.agents {
		if got := a.Store().Chunking(); got != cas.ChunkingCDC {
			t.Fatalf("node %d chunking %v, want cdc", i, got)
		}
		writers[a.Store().Writer()] = true
	}
	if len(writers) != 2 || !writers["grp-n0"] || !writers["grp-n1"] {
		t.Fatalf("per-node writers: %v", writers)
	}
	ok, err := g.TrySnapshot(0, func() (CheckpointData, error) {
		return blobData("expertA", "a", "expertB", "b"), nil
	}, nil)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := g.Recover(nil)
	if err != nil || len(rec) != 2 {
		t.Fatalf("recover over cdc node group: %v %v", rec, err)
	}
}
