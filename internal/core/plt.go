package core

import "fmt"

// PLTTracker computes the Proportion of Lost Tokens metric (Eq. 7):
//
//	PLT = (1/N_moe) Σ_l [ Σ_faults L_{l,j} / (T_l · TopK_l) ]
//
// where L_{l,j} is the number of token-updates to MoE layer l's experts
// that are lost when fault j forces a rollback to checkpointed expert
// states, and T_l·TopK_l is the total number of token slots routed through
// layer l's experts during training.
//
// The tracker maintains, per (layer, expert), the cumulative count of
// tokens processed and the count as of the expert's most recent snapshot
// and persist checkpoints. Faults roll the processed counters back to the
// recovered version, mirroring the trainer's state rollback.
type PLTTracker struct {
	numLayers  int
	numExperts int

	// processed[l][e]: cumulative tokens processed by expert e of layer l.
	processed [][]float64
	// snapshotAt[l][e]: processed count captured by the latest in-memory
	// snapshot containing this expert.
	snapshotAt [][]float64
	// persistAt[l][e]: processed count captured by the latest persisted
	// checkpoint containing this expert.
	persistAt [][]float64
	// routed[l]: cumulative token slots routed through layer l
	// (tokens × TopK), the PLT denominator.
	routed []float64
	// routedAtSnapshot/routedAtPersist mirror routed for rollback.
	routedAtSnapshot []float64
	routedAtPersist  []float64

	// lost[l]: accumulated lost token-updates across faults.
	lost []float64

	faults int
}

// NewPLTTracker creates a tracker for numLayers MoE layers with numExperts
// experts each.
func NewPLTTracker(numLayers, numExperts int) *PLTTracker {
	if numLayers <= 0 || numExperts <= 0 {
		panic("core: PLT tracker needs positive dimensions")
	}
	mk := func() [][]float64 {
		m := make([][]float64, numLayers)
		for l := range m {
			m[l] = make([]float64, numExperts)
		}
		return m
	}
	return &PLTTracker{
		numLayers:        numLayers,
		numExperts:       numExperts,
		processed:        mk(),
		snapshotAt:       mk(),
		persistAt:        mk(),
		routed:           make([]float64, numLayers),
		routedAtSnapshot: make([]float64, numLayers),
		routedAtPersist:  make([]float64, numLayers),
		lost:             make([]float64, numLayers),
	}
}

// RecordBatch accounts one training step of MoE layer l: perExpert[e]
// tokens processed by each expert and routedSlots = tokens × TopK routed
// through the layer (the denominator contribution; token dropping makes
// Σ perExpert ≤ routedSlots).
func (p *PLTTracker) RecordBatch(l int, perExpert []float64, routedSlots float64) {
	if l < 0 || l >= p.numLayers {
		panic(fmt.Sprintf("core: RecordBatch layer %d out of range", l))
	}
	for e, c := range perExpert {
		if e < p.numExperts {
			p.processed[l][e] += c
		}
	}
	p.routed[l] += routedSlots
}

// RecordSnapshot marks the experts in sel as captured by an in-memory
// snapshot at the current training position. A nil selection captures all.
func (p *PLTTracker) RecordSnapshot(sel *Selection) {
	for l := 0; l < p.numLayers; l++ {
		for e := 0; e < p.numExperts; e++ {
			if sel.Contains(l, e) {
				p.snapshotAt[l][e] = p.processed[l][e]
			}
		}
		p.routedAtSnapshot[l] = p.routed[l]
	}
}

// RecordPersist marks the experts in sel as captured by a persisted
// checkpoint. Persisted experts are necessarily also snapshot-current (the
// persist phase reads from the snapshot buffers), so snapshotAt is updated
// too when behind.
func (p *PLTTracker) RecordPersist(sel *Selection) {
	for l := 0; l < p.numLayers; l++ {
		for e := 0; e < p.numExperts; e++ {
			if sel.Contains(l, e) {
				p.persistAt[l][e] = p.processed[l][e]
				if p.snapshotAt[l][e] < p.persistAt[l][e] {
					p.snapshotAt[l][e] = p.persistAt[l][e]
				}
			}
		}
		p.routedAtPersist[l] = p.routed[l]
	}
}

// RecordCheckpoint marks the experts in sel as both snapshot and persisted,
// the single-level PEC case (§3).
func (p *PLTTracker) RecordCheckpoint(sel *Selection) {
	p.RecordSnapshot(sel)
	p.RecordPersist(sel)
}

// RecordFault accounts a fault where recovery is storage-only: every expert
// rolls back to its persisted version. It returns the PLT increment this
// fault contributed.
func (p *PLTTracker) RecordFault() float64 {
	return p.recordFault(func(l, e int) bool { return false })
}

// RecordFaultTwoLevel accounts a fault under two-level recovery (§5.1):
// experts for which snapshotSurvives returns true are restored from the
// surviving in-memory snapshot (fresher), the rest from persistent storage.
// It returns the PLT increment this fault contributed.
func (p *PLTTracker) RecordFaultTwoLevel(snapshotSurvives func(l, e int) bool) float64 {
	return p.recordFault(snapshotSurvives)
}

func (p *PLTTracker) recordFault(snapshotSurvives func(l, e int) bool) float64 {
	p.faults++
	var before float64 = p.PLT()
	for l := 0; l < p.numLayers; l++ {
		for e := 0; e < p.numExperts; e++ {
			var recovered float64
			if snapshotSurvives(l, e) {
				recovered = p.snapshotAt[l][e]
			} else {
				recovered = p.persistAt[l][e]
				// The snapshot copy on a failed node is gone; after
				// recovery the freshest copy of this expert is the
				// persisted one.
				p.snapshotAt[l][e] = recovered
			}
			if p.processed[l][e] > recovered {
				p.lost[l] += p.processed[l][e] - recovered
			}
			p.processed[l][e] = recovered
		}
		// Training resumes from the recovered iteration; the denominator
		// rolls back with it so re-processed tokens are not double
		// counted. Recovery position is the persist point for
		// storage-level recovery; with two-level recovery the restart
		// still resumes from the latest complete checkpoint iteration.
		p.routed[l] = p.routedAtPersist[l]
	}
	return p.PLT() - before
}

// PLT returns the current Proportion of Lost Tokens in [0, 1].
func (p *PLTTracker) PLT() float64 {
	var sum float64
	n := 0
	for l := 0; l < p.numLayers; l++ {
		if p.routed[l] <= 0 {
			continue
		}
		sum += p.lost[l] / p.routed[l]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Faults returns the number of faults recorded.
func (p *PLTTracker) Faults() int { return p.faults }

// LostTokens returns the total lost token-updates summed over layers.
func (p *PLTTracker) LostTokens() float64 {
	var s float64
	for _, v := range p.lost {
		s += v
	}
	return s
}

// PLTThreshold is the empirical accuracy-safe bound identified by the
// paper (§3.1.2, Fig. 5): model accuracy stays comparable to the non-fault
// case while PLT does not exceed 3.75%.
const PLTThreshold = 0.0375

// EstimatePLT predicts the PLT of a training run analytically, assuming
// uniform token routing: each fault loses on average the updates of the
// (N - K_pec)/N unsaved experts accumulated over an expected I_ckpt/2 +
// (N/K_pec - 1)·I_ckpt/2 staleness window... The closed form below follows
// directly from the sequential schedule: at a fault, the expert most
// recently saved is 0..I_ckpt iterations stale, the next N/K-1 groups are
// one checkpoint period staler each, so the mean staleness is
// I_ckpt · (N/K + 1)/2 − I_ckpt/2 = I_ckpt · N/(2K) iterations, and the
// lost fraction per fault is I_ckpt·N/(2K) / I_total.
func EstimatePLT(numFaults, ickpt, kpec, numExperts, itotal int) float64 {
	if itotal <= 0 || kpec <= 0 {
		return 0
	}
	if kpec > numExperts {
		kpec = numExperts
	}
	perFault := float64(ickpt) * float64(numExperts) / (2 * float64(kpec)) / float64(itotal)
	plt := float64(numFaults) * perFault
	if plt > 1 {
		plt = 1
	}
	return plt
}
