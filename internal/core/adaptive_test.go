package core

import "testing"

func TestConfigureTwoLevelPicksLargestOverlappableK(t *testing.T) {
	// Snapshot time grows linearly with K: 0.5s per expert. F&B = 2.1s ⇒
	// K_snapshot = 4 is the largest fully-overlappable fan-out.
	in := AdaptivePlanInput{
		NumExperts:      16,
		FBTime:          2.1,
		IterTime:        2.4,
		SnapshotSeconds: func(k int) float64 { return 0.5 * float64(k) },
		PersistSeconds:  func(k int) float64 { return 1.2 * float64(k) },
	}
	cfg := ConfigureTwoLevel(in)
	if cfg.KSnapshot != 4 {
		t.Fatalf("K_snapshot = %d, want 4", cfg.KSnapshot)
	}
	if cfg.KPersist != 1 {
		t.Fatalf("K_persist = %d, want 1", cfg.KPersist)
	}
	if cfg.SnapshotTime != 2.0 || cfg.PersistTime != 1.2 {
		t.Fatalf("times: %+v", cfg)
	}
	if cfg.MinInterval != 1 {
		t.Fatalf("min interval = %v, want clamp at 1", cfg.MinInterval)
	}
}

func TestConfigureTwoLevelFallsBackToK1(t *testing.T) {
	// Even K=1 does not overlap: configuration still returns K=1 (the
	// minimum) rather than zero.
	in := AdaptivePlanInput{
		NumExperts:      8,
		FBTime:          0.1,
		IterTime:        0.2,
		SnapshotSeconds: func(k int) float64 { return float64(k) },
		PersistSeconds:  func(k int) float64 { return 2 * float64(k) },
	}
	cfg := ConfigureTwoLevel(in)
	if cfg.KSnapshot != 1 || cfg.KPersist != 1 {
		t.Fatalf("fallback config: %+v", cfg)
	}
	// Persist (2s) bounds the interval: 2 / 0.2 = 10 iterations.
	if cfg.MinInterval != 10 {
		t.Fatalf("min interval = %v, want 10", cfg.MinInterval)
	}
}

func TestConfigureTwoLevelFullWhenCheap(t *testing.T) {
	in := AdaptivePlanInput{
		NumExperts:      8,
		FBTime:          100,
		IterTime:        101,
		SnapshotSeconds: func(k int) float64 { return 0.01 * float64(k) },
		PersistSeconds:  func(k int) float64 { return 0.02 * float64(k) },
	}
	cfg := ConfigureTwoLevel(in)
	if cfg.KSnapshot != 8 {
		t.Fatalf("K_snapshot = %d, want all 8 when overlap is free", cfg.KSnapshot)
	}
}

func TestConfigureTwoLevelPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ConfigureTwoLevel(AdaptivePlanInput{})
}
