package core

import (
	"fmt"

	"moc/internal/model"
)

// Composition describes what fraction of a full checkpoint's bytes belong
// to expert state (weights + optimizer). The PEC size ratio of Eq. 6
// depends only on this share:
//
//	C_pec / C_full = (1 − ExpertShare) + ExpertShare · K_pec / N
type Composition struct {
	// ExpertShare ∈ [0, 1] is the expert fraction of checkpoint bytes.
	ExpertShare float64
}

// PaperMeasuredExpertShare is the expert-state share back-solved from the
// paper's measured Fig. 10(a) bars for GPT-350M-16E (42.3% remaining at
// K_pec = 1 with N = 16 ⇒ expert share 61.5%). The measured checkpoints
// carry replicated non-expert content beyond the Eq. 5 analytic accounting
// (whose Table-1 parameter counts give an expert share of ~86%); using the
// measured composition reproduces the published bars exactly.
const PaperMeasuredExpertShare = 0.615

// CompositionFromConfig derives the analytic composition from a model's
// parameter counts (Eqs. 5–6 with Table-1 module inventory).
func CompositionFromConfig(cfg model.Config) Composition {
	ne, e := cfg.ParamCounts()
	total := ne + e
	if total == 0 {
		return Composition{}
	}
	return Composition{ExpertShare: float64(e) / float64(total)}
}

// PECRatio returns C_pec / C_full for saving kpec of n experts.
func (c Composition) PECRatio(kpec, n int) float64 {
	if n <= 0 || kpec >= n {
		return 1
	}
	if kpec < 0 {
		panic(fmt.Sprintf("core: PECRatio kpec=%d", kpec))
	}
	return (1 - c.ExpertShare) + c.ExpertShare*float64(kpec)/float64(n)
}

// PECBytes returns the PEC checkpoint size given the full-checkpoint byte
// count and this composition.
func (c Composition) PECBytes(fullBytes int64, kpec, n int) int64 {
	return int64(float64(fullBytes) * c.PECRatio(kpec, n))
}

// SelectionBytes computes the exact serialized byte size of a PEC
// checkpoint for the given model and selection: all non-expert state plus
// the state of exactly the selected experts. A nil selection yields the
// full checkpoint size (Eq. 5); per-layer selections yield Eq. 6
// generalised to non-uniform selections.
func SelectionBytes(cfg model.Config, sel *Selection) int64 {
	var total int64
	for _, m := range cfg.Modules() {
		if m.Kind == model.KindExpert && !sel.Contains(m.MoELayer, m.Expert) {
			continue
		}
		total += m.StateBytes()
	}
	return total
}

// WeightBytesOnly is like SelectionBytes but counts only model weights,
// used by the "W" checkpointing variant of §6.3 (PEC applied to weights
// while optimizer states are saved in full, or vice versa).
func WeightBytesOnly(cfg model.Config, sel *Selection) int64 {
	var total int64
	for _, m := range cfg.Modules() {
		if m.Kind == model.KindExpert && !sel.Contains(m.MoELayer, m.Expert) {
			continue
		}
		total += m.WeightBytes()
	}
	return total
}
