package core

import (
	"strings"
	"testing"
	"testing/quick"

	"moc/internal/cluster"
	"moc/internal/model"
)

func mustPlan(t *testing.T, topo cluster.Topology, cfg model.Config, sel *Selection, s Strategy) *Plan {
	t.Helper()
	p, err := PlanCheckpoint(topo, cfg, sel, s)
	if err != nil {
		t.Fatalf("PlanCheckpoint(%v, %v): %v", topo.Name, s, err)
	}
	return p
}

func TestPlanTotalBytesMatchSelectionBytes(t *testing.T) {
	// Whatever the strategy, the union of all assignments must cover the
	// selected states exactly once (up to integer-division remainders on
	// shard splits).
	cfg := model.GPT350M16E()
	sel := NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, 1)
	want := SelectionBytes(cfg, sel)
	for _, topo := range cluster.Cases() {
		for _, s := range Strategies() {
			p := mustPlan(t, topo, cfg, sel, s)
			got := p.TotalBytes()
			diff := float64(got-want) / float64(want)
			if diff < -0.001 || diff > 0.001 {
				t.Errorf("%s/%s: plan total %d vs selection bytes %d", topo.Name, s, got, want)
			}
		}
	}
}

func TestFullPlanTotalMatchesEq5(t *testing.T) {
	cfg := model.GPT350M16E()
	for _, topo := range cluster.Cases() {
		p := mustPlan(t, topo, cfg, nil, StrategyBaseline)
		want := cfg.FullCheckpointBytes()
		got := p.TotalBytes()
		diff := float64(got-want) / float64(want)
		if diff < -0.001 || diff > 0.001 {
			t.Errorf("%s: full plan total %d vs Eq.5 %d", topo.Name, got, want)
		}
	}
}

func TestShardingReducesBottleneck(t *testing.T) {
	// Fig. 10(b-d): fully sharded checkpointing reduces the bottleneck
	// rank's workload versus the baseline, for full and PEC saving.
	cfg := model.GPT350M16E()
	for _, topo := range cluster.Cases() {
		for _, sel := range []*Selection{nil,
			NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, 1)} {
			base, _ := mustPlan(t, topo, cfg, sel, StrategyBaseline).Bottleneck()
			een, _ := mustPlan(t, topo, cfg, sel, StrategyEEEN).Bottleneck()
			if een >= base {
				t.Errorf("%s sel=%v: EE+EN bottleneck %d not < baseline %d",
					topo.Name, sel != nil, een, base)
			}
		}
	}
}

func TestEEOnlyHelpsWithMultipleEPGroups(t *testing.T) {
	// §6.2.1: "equal sharding of the expert part is only effective in
	// scenarios with multiple EP groups (Case 3)".
	cfg := model.GPT350M16E()
	for _, topo := range []cluster.Topology{cluster.Case1(), cluster.Case2()} {
		base, _ := mustPlan(t, topo, cfg, nil, StrategyBaseline).Bottleneck()
		ee, _ := mustPlan(t, topo, cfg, nil, StrategyEE).Bottleneck()
		if ee != base {
			t.Errorf("%s: EE changed bottleneck (%d vs %d) with a single EP group", topo.Name, ee, base)
		}
	}
	c3 := cluster.Case3()
	base3, _ := mustPlan(t, c3, cfg, nil, StrategyBaseline).Bottleneck()
	ee3, _ := mustPlan(t, c3, cfg, nil, StrategyEE).Bottleneck()
	if ee3 >= base3 {
		t.Errorf("Case3: EE bottleneck %d should be < baseline %d", ee3, base3)
	}
}

func TestAdaptiveBeatsEqualUnderPEC(t *testing.T) {
	// §4.3/§6.2.1: with K_pec = 1 the adaptive non-expert sharding
	// further reduces the bottleneck versus equal sharding.
	cfg := model.GPT350M16E()
	sel := NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, 1)
	for _, topo := range cluster.Cases() {
		en, _ := mustPlan(t, topo, cfg, sel, StrategyEEEN).Bottleneck()
		an, _ := mustPlan(t, topo, cfg, sel, StrategyEEAN).Bottleneck()
		if an > en {
			t.Errorf("%s: adaptive bottleneck %d worse than equal %d", topo.Name, an, en)
		}
	}
}

func TestBaselineConcentratesOnRank0AndEPGroup0(t *testing.T) {
	cfg := model.GPT350M16E()
	topo := cluster.Case3()
	p := mustPlan(t, topo, cfg, nil, StrategyBaseline)
	for _, a := range p.Assignments {
		if strings.HasSuffix(a.Module, "/w") && !strings.Contains(a.Module, "expert") {
			if a.Rank != 0 {
				t.Fatalf("baseline non-expert weight %q on rank %d", a.Module, a.Rank)
			}
		}
		if strings.Contains(a.Module, "expert") && strings.HasSuffix(a.Module, "/w") {
			if topo.EPGroupOf(a.Rank) != 0 {
				t.Fatalf("baseline expert weight %q outside EP group 0 (rank %d)", a.Module, a.Rank)
			}
		}
	}
}

func TestCase2BottleneckMagnitude(t *testing.T) {
	// Fig. 10(c): Case2 baseline bottleneck is ~2 GB for the full save.
	cfg := model.GPT350M16E()
	p := mustPlan(t, cluster.Case2(), cfg, nil, StrategyBaseline)
	b, rank := p.Bottleneck()
	gb := float64(b) / 1e9
	if gb < 1.2 || gb > 2.8 {
		t.Errorf("Case2 baseline bottleneck = %.2f GB, want ~2 GB", gb)
	}
	if rank != 0 {
		t.Errorf("Case2 baseline bottleneck rank = %d, want 0", rank)
	}
}

func TestPlanCoversEveryRankWithOptimizerPartition(t *testing.T) {
	cfg := model.GPT350M16E()
	topo := cluster.Case3()
	p := mustPlan(t, topo, cfg, nil, StrategyBaseline)
	for r, b := range p.PerRank {
		if b <= 0 {
			t.Fatalf("rank %d writes nothing; ZeRO-2 partitions are mandatory", r)
		}
	}
}

func TestPlanErrorsOnBadInputs(t *testing.T) {
	cfg := model.GPT350M16E()
	bad := cluster.Topology{Name: "bad", NumNodes: 1, GPUsPerNode: 8, DP: 4, TP: 1, PP: 1, EP: 4}
	if _, err := PlanCheckpoint(bad, cfg, nil, StrategyBaseline); err == nil {
		t.Fatal("invalid topology accepted")
	}
	badCfg := cfg
	badCfg.NumLayers = 0
	if _, err := PlanCheckpoint(cluster.Case1(), badCfg, nil, StrategyBaseline); err == nil {
		t.Fatal("invalid model accepted")
	}
	oddCfg := cfg
	oddCfg.NumExperts = 6 // does not divide EP=8
	oddCfg.TopK = 1
	if _, err := PlanCheckpoint(cluster.Case1(), oddCfg, nil, StrategyBaseline); err == nil {
		t.Fatal("non-divisible expert count accepted")
	}
}

func TestPlanPartitionProperty(t *testing.T) {
	// Property: for random small configs, each strategy's plan total
	// equals the selection bytes (no module lost, none double-written).
	err := quick.Check(func(kRaw, stratRaw uint8) bool {
		cfg := model.TinyMoE(4, 64, 8, 1)
		cfg.VocabSize = 64
		topo := cluster.Topology{Name: "q", NumNodes: 1, GPUsPerNode: 8,
			DP: 8, TP: 1, PP: 1, EP: 4}
		k := 1 + int(kRaw%8)
		strat := Strategies()[int(stratRaw)%4]
		sel := NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, k)
		p, err := PlanCheckpoint(topo, cfg, sel, strat)
		if err != nil {
			return false
		}
		want := SelectionBytes(cfg, sel)
		got := p.TotalBytes()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// integer-division remainders only
		return float64(diff) <= 0.01*float64(want)+64
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIdealRankBytesEq8(t *testing.T) {
	cfg := model.GPT350M16E()
	topo := cluster.Case2()
	ne, e := cfg.ParamCounts()
	want := (ne+e)*model.BytesOptimizer/16 + ne*model.BytesWeight/16 + e*model.BytesWeight/16
	if got := IdealRankBytes(topo, cfg); got != want {
		t.Fatalf("IdealRankBytes = %d, want %d", got, want)
	}
}

func TestPECImbalancedEq9(t *testing.T) {
	// K_pec·N_moe divisible by D_ep and quotient divisible by the group
	// count ⇒ balanced.
	if PECImbalanced(2, 8, 8, 16) {
		// 2·8=16, 16%8==0, (16/8)%(16/8)=2%2=0 → balanced
		t.Fatal("Eq.9 balanced case reported imbalanced")
	}
	if !PECImbalanced(1, 12, 8, 8) {
		// 1·12=12, 12%8 != 0 → imbalanced (Fig. 4 example shape)
		t.Fatal("Eq.9 imbalanced case reported balanced")
	}
	if !PECImbalanced(1, 8, 0, 8) {
		t.Fatal("degenerate degrees should be imbalanced")
	}
}

func TestStrategyStrings(t *testing.T) {
	want := []string{"Baseline", "EE", "EE+EN", "EE+AN"}
	for i, s := range Strategies() {
		if s.String() != want[i] {
			t.Fatalf("strategy %d = %q, want %q", i, s, want[i])
		}
	}
	if !strings.Contains(Strategy(99).String(), "Strategy") {
		t.Fatal("unknown strategy String")
	}
}
