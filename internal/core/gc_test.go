package core

import (
	"strings"
	"testing"

	"moc/internal/storage"
)

func TestCompactKeepsRecoverableState(t *testing.T) {
	a, _, persist := newTestAgent(t, 3)
	rounds := []CheckpointData{
		blobData("ne", "ne@0", "e0", "e0@0", "e1", "e1@0"), // bootstrap full
		blobData("ne", "ne@1", "e0", "e0@1"),
		blobData("ne", "ne@2", "e1", "e1@2"),
		blobData("ne", "ne@3", "e0", "e0@3"),
	}
	for r, data := range rounds {
		d := data
		if !a.TrySnapshot(r, func() (CheckpointData, error) { return d, nil }, nil) {
			t.Fatalf("round %d refused", r)
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore, err := a.PersistedBytes()
	if err != nil {
		t.Fatal(err)
	}
	deleted, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("compact found nothing despite superseded blobs")
	}
	sizeAfter, err := a.PersistedBytes()
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter >= sizeBefore {
		t.Fatalf("compact did not shrink the store: %d -> %d", sizeBefore, sizeAfter)
	}
	after, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("module set changed: %d -> %d", len(before), len(after))
	}
	for k, b := range before {
		g, ok := after[k]
		if !ok || string(g.Blob) != string(b.Blob) || g.Round != b.Round {
			t.Fatalf("recovery changed for %s: %+v vs %+v", k, g, b)
		}
	}
	// Superseded blobs are really gone: ne@0..2 and e0@0..1.
	for _, gone := range []string{
		persistKeyFor(0, "ne"), persistKeyFor(1, "ne"), persistKeyFor(2, "ne"),
		persistKeyFor(0, "e0"), persistKeyFor(1, "e0"),
	} {
		if _, err := persist.Get(gone); err == nil {
			t.Fatalf("superseded blob %s survived compact", gone)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactIdempotent(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) { return blobData("ne", "x"), nil }, nil)
	a.TrySnapshot(0, func() (CheckpointData, error) { return nil, nil }, nil) // skipped (busy) or no-op
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	d2, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Fatalf("second compact deleted %d blobs", d2)
	}
	a.Close()
}

func TestCompactThenReopen(t *testing.T) {
	persist := storage.NewMemStore()
	a, err := NewAgent(storage.NewSnapshotStore(), persist, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		r := r
		a.TrySnapshot(r, func() (CheckpointData, error) {
			return blobData("ne", "ne@"+string(rune('0'+r))), nil
		}, nil)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := NewAgent(storage.NewSnapshotStore(), persist, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec, err := b.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["ne"].Blob) != "ne@4" {
		t.Fatalf("reopened recovery after compact: %+v", rec["ne"])
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	a, _, persist := newTestAgent(t, 3)
	good := storage.EncodeTensors(map[string][]float32{"w": {1, 2, 3}})
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return CheckpointData{"m1": good, "m2": good}, nil
	}, nil)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := a.Verify()
	if err != nil || n != 2 {
		t.Fatalf("verify clean store: n=%d err=%v", n, err)
	}
	// Corrupt one persisted blob behind the agent's back.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if err := persist.Put(persistKeyFor(0, "m2"), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(); err == nil || !strings.Contains(err.Error(), "m2") {
		t.Fatalf("verify missed corruption: %v", err)
	}
	a.Close()
}
