package core

import (
	"strings"
	"testing"

	"moc/internal/storage"
	"moc/internal/storage/cas"
)

func TestCompactKeepsRecoverableState(t *testing.T) {
	a, _, persist := newTestAgent(t, 3)
	rounds := []CheckpointData{
		blobData("ne", "ne@0", "e0", "e0@0", "e1", "e1@0"), // bootstrap full
		blobData("ne", "ne@1", "e0", "e0@1"),
		blobData("ne", "ne@2", "e1", "e1@2"),
		blobData("ne", "ne@3", "e0", "e0@3"),
	}
	for r, data := range rounds {
		d := data
		if !a.TrySnapshot(r, func() (CheckpointData, error) { return d, nil }, nil) {
			t.Fatalf("round %d refused", r)
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore, err := a.PersistedBytes()
	if err != nil {
		t.Fatal(err)
	}
	deleted, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("compact found nothing despite superseded blobs")
	}
	sizeAfter, err := a.PersistedBytes()
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter >= sizeBefore {
		t.Fatalf("compact did not shrink the store: %d -> %d", sizeBefore, sizeAfter)
	}
	after, err := a.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("module set changed: %d -> %d", len(before), len(after))
	}
	for k, b := range before {
		g, ok := after[k]
		if !ok || string(g.Blob) != string(b.Blob) || g.Round != b.Round {
			t.Fatalf("recovery changed for %s: %+v vs %+v", k, g, b)
		}
	}
	// Superseded copies are really gone: ne@0..2 and e0@0..1 are no
	// longer readable through any manifest.
	for _, gone := range []struct {
		round  int
		module string
	}{
		{0, "ne"}, {1, "ne"}, {2, "ne"}, {0, "e0"}, {1, "e0"},
	} {
		if _, err := a.Store().ReadModule(gone.round, gone.module); err == nil {
			t.Fatalf("superseded %s@%d survived compact", gone.module, gone.round)
		}
	}
	// The refcount audit is clean: no orphan chunks left behind, nothing
	// referenced is missing.
	rep, err := a.Store().Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 0 || len(rep.Missing) != 0 {
		t.Fatalf("audit after compact: %d orphans, %d missing", len(rep.Orphans), len(rep.Missing))
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	_ = persist
}

func TestCompactIdempotent(t *testing.T) {
	a, _, _ := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) { return blobData("ne", "x"), nil }, nil)
	a.TrySnapshot(0, func() (CheckpointData, error) { return nil, nil }, nil) // skipped (busy) or no-op
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	d2, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Fatalf("second compact deleted %d blobs", d2)
	}
	a.Close()
}

func TestCompactThenReopen(t *testing.T) {
	persist := storage.NewMemStore()
	a, err := NewAgent(storage.NewSnapshotStore(), persist, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		r := r
		a.TrySnapshot(r, func() (CheckpointData, error) {
			return blobData("ne", "ne@"+string(rune('0'+r))), nil
		}, nil)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := NewAgent(storage.NewSnapshotStore(), persist, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec, err := b.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["ne"].Blob) != "ne@4" {
		t.Fatalf("reopened recovery after compact: %+v", rec["ne"])
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	a, _, persist := newTestAgent(t, 3)
	good1 := storage.EncodeTensors(map[string][]float32{"w": {1, 2, 3}})
	good2 := storage.EncodeTensors(map[string][]float32{"w": {4, 5, 6}})
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return CheckpointData{"m1": good1, "m2": good2}, nil
	}, nil)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := a.Verify()
	if err != nil || n != 2 {
		t.Fatalf("verify clean store: n=%d err=%v", n, err)
	}
	// Corrupt m2's chunk behind the agent's back: the content-address
	// check must catch it and name the module.
	m := a.Store().ManifestsForRound(0)[0]
	e := m.Lookup("m2")
	if e == nil || len(e.Chunks) == 0 {
		t.Fatalf("manifest lacks m2: %+v", m)
	}
	bad := append([]byte(nil), good2...)
	bad[len(bad)-1] ^= 0xff
	if err := persist.Put(cas.ChunkKey(e.Chunks[0].Hash), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(); err == nil || !strings.Contains(err.Error(), "m2") {
		t.Fatalf("verify missed corruption: %v", err)
	}
	a.Close()
}

func TestVerifyAuditDetectsMissingChunk(t *testing.T) {
	a, _, persist := newTestAgent(t, 3)
	a.TrySnapshot(0, func() (CheckpointData, error) {
		return CheckpointData{"m": storage.EncodeTensors(map[string][]float32{"w": {1}})}, nil
	}, nil)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	m := a.Store().ManifestsForRound(0)[0]
	if err := persist.Delete(cas.ChunkKey(m.Modules[0].Chunks[0].Hash)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(); err == nil {
		t.Fatal("verify missed a missing chunk")
	}
	a.Close()
}

func TestPersistDedupsUnchangedModules(t *testing.T) {
	// The PEC round shape: the non-expert module's bytes repeat across
	// rounds while experts rotate. Unchanged payloads must persist zero
	// new chunk bytes.
	a, _, persist := newTestAgent(t, 3)
	ne := storage.EncodeTensors(map[string][]float32{"w": {1, 2, 3, 4}})
	experts := []CheckpointData{
		{"ne": ne, "e0": storage.EncodeTensors(map[string][]float32{"w": {10}})},
		{"ne": ne, "e1": storage.EncodeTensors(map[string][]float32{"w": {11}})},
		{"ne": ne, "e0": storage.EncodeTensors(map[string][]float32{"w": {10}})},
	}
	for r, data := range experts {
		d := data
		if !a.TrySnapshot(r, func() (CheckpointData, error) { return d, nil }, nil) {
			t.Fatalf("round %d refused", r)
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	st := a.StorageStats()
	// Rounds 1 and 2 re-present ne (and round 2 re-presents e0@0's exact
	// bytes): all of it deduped.
	wantDeduped := int64(2*len(ne)) + int64(len(experts[0]["e0"]))
	if st.BytesDeduped != wantDeduped {
		t.Fatalf("deduped %d bytes, want %d (stats %+v)", st.BytesDeduped, wantDeduped, st)
	}
	// Physically, each unique payload is stored exactly once.
	var chunkBytes int64
	keys, _ := persist.Keys("cas/chunks/")
	for _, k := range keys {
		b, _ := persist.Get(k)
		chunkBytes += int64(len(b))
	}
	wantPhysical := int64(len(ne)) + int64(len(experts[0]["e0"])) + int64(len(experts[1]["e1"]))
	if chunkBytes != wantPhysical {
		t.Fatalf("physical chunk bytes %d, want %d", chunkBytes, wantPhysical)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
