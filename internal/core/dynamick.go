package core

// DynamicK implements the Dynamic-K strategy for fault accumulation
// (§5.3, Fig. 15b): it recalibrates K_pec after each fault recovery so the
// cumulative PLT stays below the 3.75% threshold. When the PLT already
// incurred plus the predicted loss of the next fault at the current K_pec
// would cross the threshold, K_pec is doubled; the process repeats until
// all experts are checkpointed (at which point faults lose no expert
// updates and the PLT stops growing).
type DynamicK struct {
	// N is the number of experts per MoE layer.
	N int
	// K is the current K_pec value.
	K int
	// Threshold is the PLT budget (defaults to PLTThreshold).
	Threshold float64

	cumPLT float64
	// lastLoss is the most recent per-fault PLT increment, observed while
	// the fan-out was lastLossK; predictions scale it by lastLossK / k.
	lastLoss  float64
	lastLossK int
}

// NewDynamicK starts the controller at K_pec = initialK for n experts with
// the paper's 3.75% threshold.
func NewDynamicK(n, initialK int) *DynamicK {
	if n <= 0 || initialK <= 0 || initialK > n {
		panic("core: DynamicK needs 0 < initialK <= n")
	}
	return &DynamicK{N: n, K: initialK, Threshold: PLTThreshold}
}

// CumulativePLT returns the PLT accumulated across recorded faults.
func (d *DynamicK) CumulativePLT() float64 { return d.cumPLT }

// predictNext estimates the PLT a future fault would add at fan-out k,
// scaling the most recently observed loss by the mean expert staleness,
// which is proportional to 1/k under the sequential schedule.
func (d *DynamicK) predictNext(k int) float64 {
	if k >= d.N {
		return 0
	}
	if d.lastLoss <= 0 || d.lastLossK <= 0 {
		return 0
	}
	return d.lastLoss * float64(d.lastLossK) / float64(k)
}

// OnFault records the PLT increment pltLoss incurred by a fault recovery
// and recalibrates K_pec. It returns the K_pec to use for subsequent
// checkpoints.
func (d *DynamicK) OnFault(pltLoss float64) int {
	if pltLoss < 0 {
		pltLoss = 0
	}
	d.cumPLT += pltLoss
	if pltLoss > 0 {
		d.lastLoss = pltLoss
		d.lastLossK = d.K
	}
	// Double K while the budget cannot absorb another fault at the
	// current setting; each doubling halves the predicted next loss.
	for d.K < d.N && d.cumPLT+d.predictNext(d.K) > d.Threshold {
		d.K *= 2
		if d.K > d.N {
			d.K = d.N
		}
	}
	return d.K
}
