package core

import (
	"math"
	"testing"

	"moc/internal/model"
)

func TestPaperCalibratedFig10a(t *testing.T) {
	// Fig. 10(a): with the paper-measured composition, the remaining
	// checkpoint fractions for GPT-350M-16E are 100/69.2/53.8/46.1/42.3 %
	// at K_pec = 16/8/4/2/1.
	c := Composition{ExpertShare: PaperMeasuredExpertShare}
	cases := map[int]float64{16: 1.0, 8: 0.692, 4: 0.538, 2: 0.461, 1: 0.423}
	for k, want := range cases {
		got := c.PECRatio(k, 16)
		if math.Abs(got-want) > 0.002 {
			t.Errorf("K_pec=%d: ratio %.4f, want %.3f", k, got, want)
		}
	}
}

func TestCompositionFromConfig(t *testing.T) {
	cfg := model.GPT350M16E()
	c := CompositionFromConfig(cfg)
	if c.ExpertShare < 0.7 || c.ExpertShare > 0.95 {
		t.Fatalf("analytic expert share = %.3f, want ~0.86 (params dominated by experts)", c.ExpertShare)
	}
	// The analytic ratio must agree with model.PECCheckpointBytes.
	for _, k := range []int{1, 2, 4, 8} {
		want := float64(cfg.PECCheckpointBytes(k)) / float64(cfg.FullCheckpointBytes())
		got := c.PECRatio(k, cfg.NumExperts)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("K=%d: composition ratio %.6f vs model %.6f", k, got, want)
		}
	}
}

func TestPECRatioEdges(t *testing.T) {
	c := Composition{ExpertShare: 0.5}
	if c.PECRatio(8, 8) != 1 || c.PECRatio(9, 8) != 1 {
		t.Fatal("k >= n must give ratio 1")
	}
	if c.PECRatio(0, 8) != 0.5 {
		t.Fatal("k=0 keeps only the non-expert share")
	}
	if (Composition{}).PECRatio(1, 8) != 1 {
		t.Fatal("zero expert share: PEC cannot shrink anything")
	}
}

func TestPECBytes(t *testing.T) {
	c := Composition{ExpertShare: PaperMeasuredExpertShare}
	full := int64(24_000_000_000)
	got := c.PECBytes(full, 1, 16)
	want := int64(float64(full) * 0.4234)
	if math.Abs(float64(got-want)) > 1e7 {
		t.Fatalf("PECBytes = %d, want ~%d", got, want)
	}
}

func TestSelectionBytesInterpolates(t *testing.T) {
	cfg := model.GPT125M8E()
	full := SelectionBytes(cfg, nil)
	if full != cfg.FullCheckpointBytes() {
		t.Fatalf("nil selection bytes %d != Eq.5 %d", full, cfg.FullCheckpointBytes())
	}
	sel1 := NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, 1)
	b1 := SelectionBytes(cfg, sel1)
	if b1 != cfg.PECCheckpointBytes(1) {
		t.Fatalf("uniform K=1 selection bytes %d != Eq.6 %d", b1, cfg.PECCheckpointBytes(1))
	}
	if b1 >= full {
		t.Fatal("PEC selection should shrink the checkpoint")
	}
}

func TestWeightBytesOnly(t *testing.T) {
	cfg := model.GPT125M8E()
	sel := NewSequentialSelector(cfg.NumMoELayers(), cfg.NumExperts).Select(0, 1)
	w := WeightBytesOnly(cfg, sel)
	all := SelectionBytes(cfg, sel)
	wantRatio := float64(model.BytesWeight) / float64(model.BytesWeight+model.BytesOptimizer)
	got := float64(w) / float64(all)
	if math.Abs(got-wantRatio) > 1e-9 {
		t.Fatalf("weight-only fraction %.4f, want %.4f", got, wantRatio)
	}
}

func TestPECRatioPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Composition{ExpertShare: 0.5}.PECRatio(-1, 8)
}
