package core

import (
	"math"
	"testing"
	"testing/quick"
)

// simulatePLT runs a synthetic uniform-routing training loop through the
// tracker: itotal iterations, checkpoint every ickpt, saving k of n experts
// sequentially, with faults at the given iterations (fault occurs after the
// iteration completes, before any same-iteration checkpoint).
func simulatePLT(t *testing.T, layers, n, k, ickpt, itotal int, faultAt map[int]bool) *PLTTracker {
	t.Helper()
	tr := NewPLTTracker(layers, n)
	sel := NewSequentialSelector(layers, n)
	round := 0
	perExpert := make([]float64, n)
	for e := range perExpert {
		perExpert[e] = 1 // uniform: 1 token per expert per iteration
	}
	for it := 1; it <= itotal; it++ {
		for l := 0; l < layers; l++ {
			tr.RecordBatch(l, perExpert, float64(n))
		}
		if faultAt[it] {
			tr.RecordFault()
			continue
		}
		if it%ickpt == 0 {
			tr.RecordCheckpoint(sel.Select(round, k))
			round++
		}
	}
	return tr
}

func TestPLTZeroWithoutFaults(t *testing.T) {
	tr := simulatePLT(t, 4, 8, 1, 10, 200, nil)
	if tr.PLT() != 0 {
		t.Fatalf("PLT = %v without faults", tr.PLT())
	}
	if tr.Faults() != 0 || tr.LostTokens() != 0 {
		t.Fatal("fault/lost counters should be zero")
	}
}

func TestPLTZeroWithFullCheckpoints(t *testing.T) {
	// Saving all experts (k = n) at every interval: a fault immediately
	// after a checkpoint loses nothing.
	tr := NewPLTTracker(2, 4)
	sel := FullSelection(0, 2, 4)
	for l := 0; l < 2; l++ {
		tr.RecordBatch(l, []float64{5, 5, 5, 5}, 20)
	}
	tr.RecordCheckpoint(sel)
	if got := tr.RecordFault(); got != 0 {
		t.Fatalf("full checkpoint fault lost %v", got)
	}
	if tr.PLT() != 0 {
		t.Fatalf("PLT = %v", tr.PLT())
	}
}

func TestPLTSingleFaultMatchesHandComputation(t *testing.T) {
	// 1 layer, 2 experts, K=1, checkpoint every iteration.
	// iter 1: both experts process 1 token; ckpt saves expert 0.
	// iter 2: both process 1; ckpt saves expert 1.
	// iter 3: both process 1; FAULT.
	// Recovery: expert 0 from ckpt@1 (processed=1, loses 2 tokens),
	// expert 1 from ckpt@2 (processed=2, loses 1 token).
	// Denominator rolls back to routed@ckpt2 = 4 (2 iters × 2 slots).
	// PLT = 3/4.
	tr := NewPLTTracker(1, 2)
	sel := NewSequentialSelector(1, 2)
	for it := 1; it <= 3; it++ {
		tr.RecordBatch(0, []float64{1, 1}, 2)
		if it < 3 {
			tr.RecordCheckpoint(sel.Select(it-1, 1))
		}
	}
	tr.RecordFault()
	if got, want := tr.PLT(), 0.75; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PLT = %v, want %v", got, want)
	}
	if tr.LostTokens() != 3 {
		t.Fatalf("lost tokens = %v, want 3", tr.LostTokens())
	}
}

func TestPLTInRange(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		n := 2 + int(seed%7)
		k := 1 + int(seed>>4)%n
		ickpt := 1 + int(seed>>8)%9
		faults := map[int]bool{50: true, 120: true}
		tr := simulatePLT(t, 3, n, k, ickpt, 200, faults)
		p := tr.PLT()
		return p >= 0 && p <= 1
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPLTGrowsWithInterval(t *testing.T) {
	// Fig. 5: larger I_ckpt ⇒ larger PLT (fixing K_pec).
	fault := map[int]bool{512: true}
	pltSmall := simulatePLT(t, 2, 8, 1, 4, 1024, fault).PLT()
	pltLarge := simulatePLT(t, 2, 8, 1, 64, 1024, fault).PLT()
	if pltSmall >= pltLarge {
		t.Fatalf("PLT(I=4)=%v should be < PLT(I=64)=%v", pltSmall, pltLarge)
	}
}

func TestPLTShrinksWithK(t *testing.T) {
	// Fig. 5: larger K_pec ⇒ smaller PLT (fixing I_ckpt).
	fault := map[int]bool{512: true}
	pltK1 := simulatePLT(t, 2, 8, 1, 16, 1024, fault).PLT()
	pltK4 := simulatePLT(t, 2, 8, 4, 16, 1024, fault).PLT()
	if pltK4 >= pltK1 {
		t.Fatalf("PLT(K=4)=%v should be < PLT(K=1)=%v", pltK4, pltK1)
	}
}

func TestPLTAccumulatesAcrossFaults(t *testing.T) {
	// Fig. 15(b): repeated faults accumulate PLT roughly linearly for
	// fixed K.
	one := simulatePLT(t, 2, 8, 1, 16, 2048, map[int]bool{1000: true}).PLT()
	two := simulatePLT(t, 2, 8, 1, 16, 2048, map[int]bool{700: true, 1400: true}).PLT()
	if two <= one {
		t.Fatalf("two faults PLT %v should exceed one fault PLT %v", two, one)
	}
}

func TestTwoLevelRecoveryReducesPLT(t *testing.T) {
	// Fig. 15(a): recovering surviving experts from fresher in-memory
	// snapshots reduces PLT versus storage-only recovery.
	run := func(twoLevel bool) float64 {
		tr := NewPLTTracker(1, 8)
		selSnap := NewSequentialSelector(1, 8)
		round := 0
		for it := 1; it <= 256; it++ {
			tr.RecordBatch(0, uniform(8), 8)
			if it%8 == 0 {
				snap := selSnap.Select(round, 4) // K_snapshot = 4
				persist := snap.Subset(1)        // K_persist = 1
				tr.RecordSnapshot(snap)
				tr.RecordPersist(persist)
				round++
			}
			if it == 200 {
				if twoLevel {
					// Half the experts live on surviving nodes.
					tr.RecordFaultTwoLevel(func(l, e int) bool { return e >= 4 })
				} else {
					tr.RecordFault()
				}
			}
		}
		return tr.PLT()
	}
	storage := run(false)
	twolevel := run(true)
	if twolevel >= storage {
		t.Fatalf("two-level PLT %v should be < storage-only PLT %v", twolevel, storage)
	}
	if storage <= 0 {
		t.Fatal("storage-only PLT should be positive in this scenario")
	}
}

func uniform(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestEstimatePLTShape(t *testing.T) {
	// The analytic estimate must be monotone in faults and interval, and
	// anti-monotone in K.
	base := EstimatePLT(1, 32, 2, 8, 10000)
	if EstimatePLT(2, 32, 2, 8, 10000) <= base {
		t.Fatal("estimate not monotone in faults")
	}
	if EstimatePLT(1, 64, 2, 8, 10000) <= base {
		t.Fatal("estimate not monotone in interval")
	}
	if EstimatePLT(1, 32, 4, 8, 10000) >= base {
		t.Fatal("estimate not anti-monotone in K")
	}
	if EstimatePLT(1000, 64, 1, 8, 100) != 1 {
		t.Fatal("estimate should clamp to 1")
	}
	if EstimatePLT(1, 32, 0, 8, 100) != 0 || EstimatePLT(1, 32, 1, 8, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestEstimateTracksSimulatedPLT(t *testing.T) {
	// The closed form should be within 2× of the simulated tracker for a
	// mid-training fault under uniform routing.
	itotal := 1024
	fault := map[int]bool{512: true}
	sim := simulatePLT(t, 2, 8, 2, 16, itotal, fault).PLT()
	est := EstimatePLT(1, 16, 2, 8, itotal/2) // fault at midpoint: denominator ~ itotal/2
	if sim <= 0 || est <= 0 {
		t.Fatalf("expected positive PLTs: sim=%v est=%v", sim, est)
	}
	ratio := est / sim
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("estimate %v vs simulated %v (ratio %v) diverges", est, sim, ratio)
	}
}
