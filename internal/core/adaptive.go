package core

// AdaptiveConfig is the outcome of the adaptive two-level configuration
// scheme of §5.3.
type AdaptiveConfig struct {
	// KSnapshot is the snapshot-level expert fan-out: the largest K whose
	// snapshot fully overlaps the next iteration's forward+backward.
	KSnapshot int
	// KPersist is the persist-level fan-out, kept small (the two-level
	// recovery absorbs its PLT cost) to minimize the persist duration.
	KPersist int
	// MinInterval is the checkpoint-interval lower bound in iterations
	// imposed by the persist channel.
	MinInterval float64
	// SnapshotTime and PersistTime are the projected phase durations at
	// the chosen fan-outs.
	SnapshotTime float64
	PersistTime  float64
}

// AdaptivePlanInput supplies the measurements the configurator needs,
// decoupled from any particular cost model.
type AdaptivePlanInput struct {
	// NumExperts is N, the experts per MoE layer.
	NumExperts int
	// FBTime is the forward+backward window available for overlap.
	FBTime float64
	// IterTime is the full iteration duration (F&B + update).
	IterTime float64
	// SnapshotSeconds returns the bottleneck-rank snapshot duration when
	// saving k experts per layer.
	SnapshotSeconds func(k int) float64
	// PersistSeconds returns the bottleneck-rank persist duration when
	// persisting k experts per layer.
	PersistSeconds func(k int) float64
}

// ConfigureTwoLevel picks (K_snapshot, K_persist) per §5.3: the primary
// strategy maximizes K_snapshot subject to complete snapshot/F&B overlap
// (minimizing O_save at the lowest achievable PLT), and sets K_persist to
// the smallest fan-out, which minimizes the persist duration and therefore
// the lower bound on I_ckpt; the two-level recovery keeps the PLT cost of
// the aggressive persist level low.
func ConfigureTwoLevel(in AdaptivePlanInput) AdaptiveConfig {
	if in.NumExperts <= 0 || in.SnapshotSeconds == nil || in.PersistSeconds == nil {
		panic("core: incomplete adaptive plan input")
	}
	kSnap := 1
	for k := in.NumExperts; k >= 1; k-- {
		if in.SnapshotSeconds(k) <= in.FBTime {
			kSnap = k
			break
		}
	}
	kPersist := 1
	if kPersist > kSnap {
		kPersist = kSnap
	}
	cfg := AdaptiveConfig{
		KSnapshot:    kSnap,
		KPersist:     kPersist,
		SnapshotTime: in.SnapshotSeconds(kSnap),
		PersistTime:  in.PersistSeconds(kPersist),
	}
	if in.IterTime > 0 {
		occ := cfg.SnapshotTime
		if cfg.PersistTime > occ {
			occ = cfg.PersistTime
		}
		cfg.MinInterval = occ / in.IterTime
		if cfg.MinInterval < 1 {
			cfg.MinInterval = 1
		}
	}
	return cfg
}
