// Package moe implements the sparse Mixture-of-Experts gating of §2.1: the
// noisy top-k softmax router (Eq. 2) with the capacity-based token dropping
// of GShard-style expert parallelism. It produces, besides the routing
// decisions themselves, the per-expert token counts that feed the PLT
// metric (Eq. 7) and the load-aware PEC selector (§3.2).
package moe

import (
	"fmt"
	"math"

	"moc/internal/rng"
	"moc/internal/tensor"
)

// RouterConfig parameterizes one MoE layer's gate.
type RouterConfig struct {
	NumExperts int
	TopK       int
	// CapacityFactor bounds each expert's per-batch token count to
	// ceil(CapacityFactor · T · TopK / NumExperts); 0 disables dropping.
	CapacityFactor float64
	// NoiseStd is the standard deviation of the Gaussian gate noise ε of
	// Eq. 2, applied during training only.
	NoiseStd float64
}

// Validate checks the configuration.
func (c RouterConfig) Validate() error {
	if c.NumExperts <= 0 {
		return fmt.Errorf("moe: NumExperts must be positive")
	}
	if c.TopK <= 0 || c.TopK > c.NumExperts {
		return fmt.Errorf("moe: TopK %d out of range 1..%d", c.TopK, c.NumExperts)
	}
	if c.CapacityFactor < 0 || c.NoiseStd < 0 {
		return fmt.Errorf("moe: negative capacity factor or noise")
	}
	return nil
}

// Slot is one (token, expert) dispatch decision.
type Slot struct {
	Expert  int
	Gate    float32 // renormalized top-k gate weight
	Dropped bool    // true if the expert was at capacity
}

// Routing is the outcome of routing one batch through a gate.
type Routing struct {
	// Slots[t] lists the TopK dispatch slots of token t in gate order.
	Slots [][]Slot
	// Probs[t] is the full softmax distribution over experts for token t
	// (computed from the noisy logits), needed by gate backpropagation.
	Probs [][]float32
	// PerExpert[e] counts the tokens expert e actually processed
	// (after capacity dropping).
	PerExpert []int
	// RoutedSlots is tokens × TopK, the PLT denominator contribution.
	RoutedSlots int
	// DroppedSlots counts slots lost to expert capacity.
	DroppedSlots int
	// Capacity is the per-expert token bound used (0 = unlimited).
	Capacity int
}

// Route computes the routing of a batch given each token's raw gate logits
// (length NumExperts). When r is non-nil and NoiseStd > 0, Gaussian noise
// is added to the logits before the softmax — the ε of Eq. 2. Tokens are
// served in batch order; an expert beyond capacity drops the slot (the
// token then contributes only through the residual path, as in GShard).
func Route(cfg RouterConfig, logits [][]float32, r *rng.RNG) (*Routing, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumExperts
	out := &Routing{
		Slots:       make([][]Slot, len(logits)),
		Probs:       make([][]float32, len(logits)),
		PerExpert:   make([]int, n),
		RoutedSlots: len(logits) * cfg.TopK,
	}
	if cfg.CapacityFactor > 0 {
		out.Capacity = int(math.Ceil(cfg.CapacityFactor * float64(len(logits)) * float64(cfg.TopK) / float64(n)))
		if out.Capacity < 1 {
			out.Capacity = 1
		}
	}
	noisy := make([]float32, n)
	for t, lg := range logits {
		if len(lg) != n {
			return nil, fmt.Errorf("moe: token %d has %d logits, want %d", t, len(lg), n)
		}
		copy(noisy, lg)
		if r != nil && cfg.NoiseStd > 0 {
			for e := range noisy {
				noisy[e] += r.NormFloat32(0, cfg.NoiseStd)
			}
		}
		probs := make([]float32, n)
		tensor.Softmax(probs, noisy)
		out.Probs[t] = probs

		top := tensor.TopK(probs, cfg.TopK)
		var denom float32
		for _, e := range top {
			denom += probs[e]
		}
		if denom <= 0 {
			denom = 1
		}
		slots := make([]Slot, 0, cfg.TopK)
		for _, e := range top {
			s := Slot{Expert: e, Gate: probs[e] / denom}
			if out.Capacity > 0 && out.PerExpert[e] >= out.Capacity {
				s.Dropped = true
				out.DroppedSlots++
			} else {
				out.PerExpert[e]++
			}
			slots = append(slots, s)
		}
		out.Slots[t] = slots
	}
	return out, nil
}

// LoadImbalance returns the ratio between the busiest expert's token count
// and the mean, a standard routing-health diagnostic (1.0 = perfectly
// balanced).
func (r *Routing) LoadImbalance() float64 {
	if len(r.PerExpert) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, c := range r.PerExpert {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.PerExpert))
	return float64(max) / mean
}

// PerExpertFloat returns the processed-token counts as float64, the shape
// the PLT tracker and load-aware selector consume.
func (r *Routing) PerExpertFloat() []float64 {
	out := make([]float64, len(r.PerExpert))
	for i, c := range r.PerExpert {
		out[i] = float64(c)
	}
	return out
}
