package moe

import (
	"math"
	"testing"
	"testing/quick"

	"moc/internal/rng"
)

func mkLogits(r *rng.RNG, tokens, experts int) [][]float32 {
	out := make([][]float32, tokens)
	for t := range out {
		lg := make([]float32, experts)
		for e := range lg {
			lg[e] = r.NormFloat32(0, 1)
		}
		out[t] = lg
	}
	return out
}

func TestValidate(t *testing.T) {
	bad := []RouterConfig{
		{NumExperts: 0, TopK: 1},
		{NumExperts: 4, TopK: 0},
		{NumExperts: 4, TopK: 5},
		{NumExperts: 4, TopK: 1, CapacityFactor: -1},
		{NumExperts: 4, TopK: 1, NoiseStd: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRouteBasicShape(t *testing.T) {
	r := rng.New(1)
	cfg := RouterConfig{NumExperts: 8, TopK: 2}
	routing, err := Route(cfg, mkLogits(r, 32, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(routing.Slots) != 32 || routing.RoutedSlots != 64 {
		t.Fatalf("shape: %d tokens, %d slots", len(routing.Slots), routing.RoutedSlots)
	}
	total := 0
	for _, c := range routing.PerExpert {
		total += c
	}
	if total != 64 || routing.DroppedSlots != 0 {
		t.Fatalf("unlimited capacity: processed %d, dropped %d", total, routing.DroppedSlots)
	}
}

func TestGatesRenormalized(t *testing.T) {
	r := rng.New(2)
	cfg := RouterConfig{NumExperts: 8, TopK: 2}
	routing, err := Route(cfg, mkLogits(r, 16, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	for ti, slots := range routing.Slots {
		var sum float64
		for _, s := range slots {
			if s.Gate < 0 || s.Gate > 1 {
				t.Fatalf("gate %v out of range", s.Gate)
			}
			sum += float64(s.Gate)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("token %d gate sum %v", ti, sum)
		}
	}
}

func TestTopKPicksHighestProb(t *testing.T) {
	cfg := RouterConfig{NumExperts: 4, TopK: 1}
	logits := [][]float32{{0, 5, 0, 0}}
	routing, err := Route(cfg, logits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if routing.Slots[0][0].Expert != 1 {
		t.Fatalf("routed to %d, want 1", routing.Slots[0][0].Expert)
	}
	if routing.Slots[0][0].Gate != 1 {
		t.Fatalf("top-1 gate = %v, want 1", routing.Slots[0][0].Gate)
	}
}

func TestCapacityDropsExcessTokens(t *testing.T) {
	// All tokens prefer expert 0; capacity factor 1 with 4 experts and
	// top-1 bounds expert 0 to ceil(16·1/4) = 4 tokens.
	cfg := RouterConfig{NumExperts: 4, TopK: 1, CapacityFactor: 1}
	logits := make([][]float32, 16)
	for i := range logits {
		logits[i] = []float32{10, 0, 0, 0}
	}
	routing, err := Route(cfg, logits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if routing.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", routing.Capacity)
	}
	if routing.PerExpert[0] != 4 {
		t.Fatalf("expert 0 processed %d, want 4", routing.PerExpert[0])
	}
	if routing.DroppedSlots != 12 {
		t.Fatalf("dropped %d, want 12", routing.DroppedSlots)
	}
	// Earlier tokens win slots (batch order).
	if routing.Slots[0][0].Dropped || !routing.Slots[15][0].Dropped {
		t.Fatal("capacity should favour earlier tokens")
	}
}

func TestNoiseRequiresRNGAndChangesRouting(t *testing.T) {
	base := RouterConfig{NumExperts: 8, TopK: 1}
	noisy := RouterConfig{NumExperts: 8, TopK: 1, NoiseStd: 5}
	logits := mkLogits(rng.New(3), 64, 8)
	r1, _ := Route(base, logits, nil)
	r2, _ := Route(base, logits, rng.New(7)) // no noise configured: rng unused
	for t2 := range r1.Slots {
		if r1.Slots[t2][0].Expert != r2.Slots[t2][0].Expert {
			t.Fatal("rng without noise changed routing")
		}
	}
	r3, _ := Route(noisy, logits, rng.New(7))
	diff := 0
	for t3 := range r1.Slots {
		if r1.Slots[t3][0].Expert != r3.Slots[t3][0].Expert {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("strong noise never changed routing")
	}
}

func TestRouteRejectsBadLogitWidth(t *testing.T) {
	cfg := RouterConfig{NumExperts: 4, TopK: 1}
	if _, err := Route(cfg, [][]float32{{1, 2}}, nil); err == nil {
		t.Fatal("narrow logits accepted")
	}
}

func TestPerExpertConservation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(seed%7)
		k := 1 + int(seed>>8)%n
		cfg := RouterConfig{NumExperts: n, TopK: k, CapacityFactor: 1.25}
		tokens := 8 + int(seed>>16)%24
		routing, err := Route(cfg, mkLogits(r, tokens, n), r)
		if err != nil {
			return false
		}
		processed := 0
		for _, c := range routing.PerExpert {
			if c < 0 || (routing.Capacity > 0 && c > routing.Capacity) {
				return false
			}
			processed += c
		}
		// processed + dropped must equal routed slots.
		return processed+routing.DroppedSlots == routing.RoutedSlots
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadImbalance(t *testing.T) {
	r := &Routing{PerExpert: []int{10, 10, 10, 10}}
	if r.LoadImbalance() != 1 {
		t.Fatalf("balanced load imbalance = %v", r.LoadImbalance())
	}
	r2 := &Routing{PerExpert: []int{40, 0, 0, 0}}
	if r2.LoadImbalance() != 4 {
		t.Fatalf("skewed load imbalance = %v", r2.LoadImbalance())
	}
	if (&Routing{}).LoadImbalance() != 0 {
		t.Fatal("empty routing imbalance")
	}
	if (&Routing{PerExpert: []int{0, 0}}).LoadImbalance() != 0 {
		t.Fatal("zero-token imbalance")
	}
}

func TestPerExpertFloat(t *testing.T) {
	r := &Routing{PerExpert: []int{1, 2, 3}}
	f := r.PerExpertFloat()
	if len(f) != 3 || f[2] != 3 {
		t.Fatalf("PerExpertFloat: %v", f)
	}
}
