// Package perf provides the analytic cost models the timing simulations
// are built on — the role ASTRA-sim plays in the paper's §6.2.4. It
// estimates, for one training iteration of a distributed MoE model:
//
//   - T_F&B: forward+backward compute plus All-to-All dispatch/combine and
//     ZeRO-2 gradient reduce-scatter;
//   - T_update: optimizer step plus parameter all-gather;
//   - T_snapshot: GPU→CPU copy of the bottleneck rank's checkpoint shard;
//   - T_persist: CPU→distributed-storage write of the bottleneck shard.
//
// GPU profiles follow the constants the paper calibrates its own
// simulations with (§6.2.4): A800 = 312 TFLOPS at 20% utilization with a
// 1 GB/s GPU-to-CPU snapshot path; H100 = 989 TFLOPS at 20% with 2 GB/s.
package perf

import (
	"fmt"

	"moc/internal/cluster"
	"moc/internal/model"
)

// GPUProfile describes one accelerator generation.
type GPUProfile struct {
	Name string
	// PeakFLOPS is the peak throughput in FLOP/s (e.g. 312e12).
	PeakFLOPS float64
	// Utilization is the achieved fraction of peak (the paper uses 0.20).
	Utilization float64
	// SnapshotBW is the effective GPU→CPU copy bandwidth in bytes/s.
	SnapshotBW float64
	// IntraNodeBW is the per-GPU NVLink bandwidth in bytes/s.
	IntraNodeBW float64
	// InterNodeBW is the per-GPU share of cross-node network bandwidth
	// in bytes/s.
	InterNodeBW float64
	// MsgLatency is the per-message latency for collective steps.
	MsgLatency float64
	// CongestionBeta inflates cross-node All-to-All cost per extra node,
	// modelling fabric contention at scale.
	CongestionBeta float64
}

// A800 returns the paper's A800 calibration.
func A800() GPUProfile {
	return GPUProfile{
		Name:           "A800",
		PeakFLOPS:      312e12,
		Utilization:    0.20,
		SnapshotBW:     1e9,
		IntraNodeBW:    200e9,
		InterNodeBW:    3e9,
		MsgLatency:     20e-6,
		CongestionBeta: 0.12,
	}
}

// H100 returns the paper's H100 calibration.
func H100() GPUProfile {
	return GPUProfile{
		Name:           "H100",
		PeakFLOPS:      989e12,
		Utilization:    0.20,
		SnapshotBW:     2e9,
		IntraNodeBW:    450e9,
		InterNodeBW:    6e9,
		MsgLatency:     15e-6,
		CongestionBeta: 0.12,
	}
}

// StorageProfile describes the distributed persistent filesystem.
type StorageProfile struct {
	Name string
	// PersistBWPerRank is the effective per-rank write bandwidth to the
	// distributed filesystem in bytes/s.
	PersistBWPerRank float64
	// ReadBWPerRank is the per-rank recovery read bandwidth in bytes/s.
	ReadBWPerRank float64
}

// DefaultStorage returns a cluster-filesystem calibration in which the
// persist path is slightly slower than the PCIe snapshot path, matching
// the relative bar lengths of Fig. 11.
func DefaultStorage() StorageProfile {
	return StorageProfile{Name: "cephfs", PersistBWPerRank: 0.8e9, ReadBWPerRank: 1.2e9}
}

// Workload binds a model, a topology, hardware profiles, and a batch size.
type Workload struct {
	Model   model.Config
	Topo    cluster.Topology
	GPU     GPUProfile
	Storage StorageProfile
	// GlobalBatch is the number of sequences per iteration across the
	// whole cluster (split over DP ranks).
	GlobalBatch int
}

// Validate checks the workload is simulable.
func (w Workload) Validate() error {
	if err := w.Model.Validate(); err != nil {
		return err
	}
	if err := w.Topo.Validate(); err != nil {
		return err
	}
	if w.GlobalBatch <= 0 {
		return fmt.Errorf("perf: GlobalBatch must be positive")
	}
	if w.GPU.PeakFLOPS <= 0 || w.GPU.SnapshotBW <= 0 {
		return fmt.Errorf("perf: GPU profile incomplete")
	}
	if w.Storage.PersistBWPerRank <= 0 {
		return fmt.Errorf("perf: storage profile incomplete")
	}
	return nil
}

// TokensPerRank returns the tokens processed per DP rank per iteration.
func (w Workload) TokensPerRank() float64 {
	seq := w.Model.SeqLen
	if seq <= 0 {
		seq = 1
	}
	return float64(w.GlobalBatch) * float64(seq) / float64(w.Topo.DP)
}

// ActiveParamsPerToken returns the parameters touched by each token:
// all non-expert matmul parameters plus TopK experts per MoE layer.
func (w Workload) ActiveParamsPerToken() float64 {
	var active float64
	for _, m := range w.Model.Modules() {
		switch {
		case m.Kind == model.KindExpert:
			// Each token activates TopK of the NumExperts experts.
			active += float64(m.Params) * float64(w.Model.TopK) / float64(w.Model.NumExperts)
		case m.Layer >= 0:
			active += float64(m.Params)
		default:
			// Embedding lookups are gathers, not matmuls; the head
			// projection is a matmul.
			if m.Name == "head" {
				active += float64(m.Params)
			}
		}
	}
	return active
}

// ComputeTime returns the pure compute portion of T_F&B: forward+backward
// ≈ 6 FLOPs per active parameter per token, divided over the TP degree.
func (w Workload) ComputeTime() float64 {
	flops := 6 * w.ActiveParamsPerToken() * w.TokensPerRank()
	eff := w.GPU.PeakFLOPS * w.GPU.Utilization * float64(w.Topo.TP)
	return flops / eff
}

// AllToAllTime returns the expert-dispatch/combine communication time per
// iteration: two All-to-Alls forward and two backward per MoE layer. The
// effective bandwidth is NVLink when the EP group fits in a node, or the
// congested cross-node share otherwise.
func (w Workload) AllToAllTime() float64 {
	nmoe := w.Model.NumMoELayers()
	if nmoe == 0 || w.Topo.EP == 1 {
		return 0
	}
	bytesPerPass := w.TokensPerRank() * float64(w.Model.HiddenSize) *
		float64(model.BytesWeight) * float64(w.Model.TopK)
	passes := 4.0 * float64(nmoe)
	bw := w.GPU.IntraNodeBW
	latency := w.GPU.MsgLatency * float64(minInt(w.Topo.EP, 64)) * passes
	if !w.Topo.EPIsIntraNode() {
		bw = w.GPU.InterNodeBW
		nodesSpanned := float64(w.Topo.NumNodes)
		bw /= 1 + w.GPU.CongestionBeta*(nodesSpanned-1)
	}
	return bytesPerPass*passes/bw + latency
}

// GradSyncTime returns the ZeRO-2 gradient reduce-scatter time: non-expert
// gradients across DP, expert gradients across EP groups.
func (w Workload) GradSyncTime() float64 {
	ne, e := w.Model.ParamCounts()
	bw := w.GPU.IntraNodeBW
	if w.Topo.NumNodes > 1 {
		bw = w.GPU.InterNodeBW
	}
	neBytes := float64(ne) * model.BytesWeight
	t := neBytes / bw * 2 * float64(w.Topo.DP-1) / float64(w.Topo.DP)
	if groups := w.Topo.NumEPGroups(); groups > 1 {
		eBytes := float64(e) * model.BytesWeight / float64(w.Topo.EP)
		t += eBytes / bw * 2 * float64(groups-1) / float64(groups)
	}
	return t
}

// FBTime returns T_F&B: compute + All-to-All + gradient sync.
func (w Workload) FBTime() float64 {
	return w.ComputeTime() + w.AllToAllTime() + w.GradSyncTime()
}

// UpdateTime returns T_update: the optimizer step over the local partition
// (memory-bandwidth bound, folded into a constant per-byte cost) plus the
// fp16 parameter all-gather that ZeRO-2 performs after the step.
func (w Workload) UpdateTime() float64 {
	ne, e := w.Model.ParamCounts()
	partitionBytes := float64(ne+e) * model.BytesOptimizer / float64(w.Topo.DP)
	const memBW = 1.0e12 // effective optimizer-step byte throughput
	step := partitionBytes * 3 / memBW
	bw := w.GPU.IntraNodeBW
	if w.Topo.NumNodes > 1 {
		bw = w.GPU.InterNodeBW
	}
	gather := float64(ne) * model.BytesWeight / bw
	return step + gather
}

// SnapshotTime returns the GPU→CPU copy duration for a per-rank shard of
// the given size.
func (w Workload) SnapshotTime(shardBytes int64) float64 {
	return float64(shardBytes) / w.GPU.SnapshotBW
}

// PersistTime returns the CPU→storage write duration for a per-rank shard
// of the given size.
func (w Workload) PersistTime(shardBytes int64) float64 {
	return float64(shardBytes) / w.Storage.PersistBWPerRank
}

// RestartTime estimates O_restart: process restart plus reading the
// recovery shard back from storage.
func (w Workload) RestartTime(shardBytes int64) float64 {
	const processRestart = 60.0 // seconds: scheduler + NCCL re-init
	return processRestart + float64(shardBytes)/w.Storage.ReadBWPerRank
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
