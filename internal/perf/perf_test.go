package perf

import (
	"testing"

	"moc/internal/cluster"
	"moc/internal/model"
)

func caseWorkload(topo cluster.Topology) Workload {
	return Workload{
		Model:       model.GPT350M16E(),
		Topo:        topo,
		GPU:         A800(),
		Storage:     DefaultStorage(),
		GlobalBatch: 256,
	}
}

func TestValidate(t *testing.T) {
	w := caseWorkload(cluster.Case1())
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.GlobalBatch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch accepted")
	}
	bad2 := w
	bad2.GPU.PeakFLOPS = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty GPU profile accepted")
	}
	bad3 := w
	bad3.Storage.PersistBWPerRank = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("empty storage profile accepted")
	}
}

func TestTokensSplitAcrossDP(t *testing.T) {
	w1 := caseWorkload(cluster.Case1()) // DP=8
	w2 := caseWorkload(cluster.Case2()) // DP=16
	if w1.TokensPerRank() != 2*w2.TokensPerRank() {
		t.Fatalf("tokens per rank: %v vs %v, want 2x", w1.TokensPerRank(), w2.TokensPerRank())
	}
}

func TestActiveParamsBetweenDenseAndFull(t *testing.T) {
	w := caseWorkload(cluster.Case1())
	active := w.ActiveParamsPerToken()
	ne, e := w.Model.ParamCounts()
	if active <= float64(ne)/2 {
		t.Fatalf("active params %v suspiciously small", active)
	}
	if active >= float64(ne+e) {
		t.Fatalf("active params %v should be far below total %d (sparsity)", active, ne+e)
	}
	// With TopK=1 of 16 experts, active expert params are 1/16 of P_e.
	if active > float64(ne)+1.5*float64(e)/16 {
		t.Fatalf("active params %v exceed non-expert + topK experts", active)
	}
}

func TestFBTimeReasonableRange(t *testing.T) {
	// Fig. 11: per-iteration F&B on the real cluster is seconds-scale.
	for _, topo := range cluster.Cases() {
		w := caseWorkload(topo)
		fb := w.FBTime()
		if fb < 0.2 || fb > 10 {
			t.Errorf("%s: F&B = %.2fs out of plausible range", topo.Name, fb)
		}
	}
}

func TestCase3FasterThanCase2(t *testing.T) {
	// §6.2.2: Case3 (intra-node EP) trains ~0.5s faster than Case2
	// (cross-node EP) because All-to-All stays on NVLink.
	fb2 := caseWorkload(cluster.Case2()).FBTime()
	fb3 := caseWorkload(cluster.Case3()).FBTime()
	if fb3 >= fb2 {
		t.Fatalf("Case3 F&B %.3fs should be < Case2 %.3fs", fb3, fb2)
	}
	if diff := fb2 - fb3; diff < 0.1 || diff > 2.0 {
		t.Errorf("Case2-Case3 gap %.3fs, want roughly half a second", diff)
	}
}

func TestH100FasterComputeAndSnapshot(t *testing.T) {
	wA := caseWorkload(cluster.Case1())
	wH := wA
	wH.GPU = H100()
	if wH.ComputeTime() >= wA.ComputeTime() {
		t.Fatal("H100 compute should be faster")
	}
	if wH.SnapshotTime(1e9) >= wA.SnapshotTime(1e9) {
		t.Fatal("H100 snapshot should be faster")
	}
}

func TestSnapshotPersistProportionalToBytes(t *testing.T) {
	w := caseWorkload(cluster.Case1())
	if w.SnapshotTime(2e9) != 2*w.SnapshotTime(1e9) {
		t.Fatal("snapshot time not linear in bytes")
	}
	if w.PersistTime(2e9) != 2*w.PersistTime(1e9) {
		t.Fatal("persist time not linear in bytes")
	}
	if w.PersistTime(1e9) <= w.SnapshotTime(1e9) {
		t.Fatal("persist path should be slower than snapshot path")
	}
}

func TestSeqLenAffectsOnlyFB(t *testing.T) {
	// Fig. 13(d): sequence length changes F&B but not checkpoint times.
	short := Workload{Model: model.LLaMAMoE(model.LLaMAMoEMedium, 32, 512),
		Topo: cluster.Scaled(32, 1), GPU: A800(), Storage: DefaultStorage(), GlobalBatch: 64}
	long := short
	long.Model = model.LLaMAMoE(model.LLaMAMoEMedium, 32, 4096)
	if long.FBTime() <= short.FBTime() {
		t.Fatal("longer sequences should lengthen F&B")
	}
	if long.SnapshotTime(1e9) != short.SnapshotTime(1e9) {
		t.Fatal("sequence length must not affect snapshot time")
	}
}

func TestLargerModelSlowerEverywhere(t *testing.T) {
	// Fig. 13(e): larger models increase both F&B and snapshot volume.
	mk := func(s model.LLaMAMoESize) Workload {
		return Workload{Model: model.LLaMAMoE(s, 256, 1024),
			Topo: cluster.Scaled(256, 1), GPU: A800(), Storage: DefaultStorage(), GlobalBatch: 512}
	}
	small, large := mk(model.LLaMAMoESmall), mk(model.LLaMAMoELarge)
	if large.FBTime() <= small.FBTime() {
		t.Fatal("larger model should have longer F&B")
	}
}

func TestAllToAllGrowsWithScale(t *testing.T) {
	// Fig. 13(a): cross-node All-to-All grows with GPU count (congestion),
	// driving F&B up at scale.
	mk := func(gpus int) Workload {
		return Workload{Model: model.LLaMAMoE(model.LLaMAMoEMedium, gpus, 1024),
			Topo: cluster.Scaled(gpus, 1), GPU: A800(), Storage: DefaultStorage(),
			GlobalBatch: 2 * gpus}
	}
	prev := 0.0
	for _, gpus := range []int{32, 128, 512, 1024} {
		fb := mk(gpus).FBTime()
		if fb <= prev {
			t.Fatalf("F&B at %d GPUs = %.2fs did not grow (prev %.2fs)", gpus, fb, prev)
		}
		prev = fb
	}
}

func TestUpdateTimeSmallButPositive(t *testing.T) {
	w := caseWorkload(cluster.Case1())
	u := w.UpdateTime()
	if u <= 0 || u > w.FBTime() {
		t.Fatalf("update time %.3fs should be positive and below F&B %.3fs", u, w.FBTime())
	}
}

func TestRestartDominatedByProcessRestart(t *testing.T) {
	w := caseWorkload(cluster.Case1())
	if w.RestartTime(1e9) < 60 {
		t.Fatal("restart should include the constant process restart cost")
	}
	if w.RestartTime(2e9) <= w.RestartTime(1e9) {
		t.Fatal("restart should grow with recovery bytes")
	}
}

func TestDenseModelNoAllToAll(t *testing.T) {
	dense := model.Config{Name: "dense", NumLayers: 12, HiddenSize: 1024,
		NumHeads: 16, FFNMult: 4, VocabSize: 32000, SeqLen: 1024}
	w := Workload{Model: dense, Topo: cluster.Case1(), GPU: A800(),
		Storage: DefaultStorage(), GlobalBatch: 64}
	if w.AllToAllTime() != 0 {
		t.Fatal("dense model should have zero All-to-All time")
	}
}
