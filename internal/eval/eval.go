// Package eval scores trained models on the downstream-task proxy suite
// standing in for the paper's Table 3/4 benchmarks (HellaSwag, PIQA, …).
// Each task is a domain-shifted corpus; a model's task accuracy is its
// next-token top-1 accuracy on a fixed held-out sample of the task's
// distribution. Scores are comparable across checkpointing variants
// because every variant is evaluated on identical examples.
package eval

import (
	"fmt"

	"moc/internal/data"
	"moc/internal/train"
)

// TaskResult is one task's score.
type TaskResult struct {
	Name     string
	Accuracy float64 // top-1 next-token accuracy, in [0, 1]
	Loss     float64 // mean cross-entropy
}

// Suite is a fixed downstream evaluation set.
type Suite struct {
	window  int
	samples int
	tasks   []*data.Corpus
}

// NewSuite builds the eight-task suite over the given vocabulary with the
// given per-task sample count and context window.
func NewSuite(vocab, window, samples int) *Suite {
	s := &Suite{window: window, samples: samples}
	for i := range data.TaskNames() {
		s.tasks = append(s.tasks, data.Task(vocab, i))
	}
	return s
}

// Evaluate scores the model on every task and returns per-task results
// plus the average accuracy.
func (s *Suite) Evaluate(m *train.Model) ([]TaskResult, float64, error) {
	var results []TaskResult
	var sum float64
	for _, task := range s.tasks {
		examples := task.Heldout(uint64(len(task.Name())), s.samples, s.window)
		loss, acc, err := m.Evaluate(examples)
		if err != nil {
			return nil, 0, fmt.Errorf("eval %s: %w", task.Name(), err)
		}
		results = append(results, TaskResult{Name: task.Name(), Accuracy: acc, Loss: loss})
		sum += acc
	}
	return results, sum / float64(len(results)), nil
}

// Names returns the task names in evaluation order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.tasks))
	for i, t := range s.tasks {
		out[i] = t.Name()
	}
	return out
}
