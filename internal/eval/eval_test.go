package eval

import (
	"testing"

	"moc/internal/data"
	"moc/internal/model"
	"moc/internal/train"
)

func trainedModel(t *testing.T, iters int) *train.Model {
	t.Helper()
	mc := model.TinyMoE(3, 24, 4, 2)
	mc.VocabSize = 64
	m, err := train.New(train.Config{
		Model: mc, Window: 6, BatchSize: 32, LR: 0.01,
		CapacityFactor: 1.5, NoiseStd: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus("pretrain", 64, data.PretrainDomain)
	for it := 0; it < iters; it++ {
		if _, err := m.TrainBatch(corpus.Batch(3, it, 32, 6)); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestSuiteShape(t *testing.T) {
	s := NewSuite(64, 6, 64)
	if len(s.Names()) != 8 {
		t.Fatalf("suite has %d tasks", len(s.Names()))
	}
	m := trainedModel(t, 60)
	results, avg, err := s.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	var sum float64
	for _, r := range results {
		if r.Accuracy < 0 || r.Accuracy > 1 || r.Loss <= 0 {
			t.Fatalf("task %s: acc %.3f loss %.3f", r.Name, r.Accuracy, r.Loss)
		}
		sum += r.Accuracy
	}
	if avg != sum/8 {
		t.Fatal("average inconsistent")
	}
}

func TestSuiteDeterministic(t *testing.T) {
	s := NewSuite(64, 6, 32)
	m := trainedModel(t, 30)
	_, a1, err := s.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	_, a2, err := s.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("evaluation not deterministic: %v vs %v", a1, a2)
	}
}

func TestPretrainingTransfersToTasks(t *testing.T) {
	// The blended tasks must reward pre-training: a trained model scores
	// meaningfully above chance on average.
	s := NewSuite(64, 6, 128)
	trained := trainedModel(t, 150)
	_, avgTrained, err := s.Evaluate(trained)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / 64
	if avgTrained < 2*chance {
		t.Fatalf("trained model task accuracy %.4f not above chance %.4f", avgTrained, chance)
	}
	fresh := trainedModel(t, 0)
	_, avgFresh, err := s.Evaluate(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if avgTrained <= avgFresh {
		t.Fatalf("pre-training did not transfer: %.4f vs untrained %.4f", avgTrained, avgFresh)
	}
}
