package moc_test

// End-to-end acceptance tests for the sharded storage tier through the
// public API: a fleet over a consistent-hash sharded store (one shard
// replicated), per-shard scrub health/repair, per-shard stats, and an
// online grow-and-rebalance with training state surviving throughout.

import (
	"testing"

	moc "moc"
)

func TestShardedFleetEndToEnd(t *testing.T) {
	// Four shards; shard 1 is a replica pair with a failable second
	// backend, so the per-shard repair path has something to repair.
	flaky := moc.NewFlakyStore(moc.NewMemStore())
	repl, err := moc.NewReplicatedStore(moc.NewMemStore(), flaky)
	if err != nil {
		t.Fatal(err)
	}
	store, err := moc.NewShardedStore(moc.ShardConfig{Shards: []moc.PersistStore{
		moc.NewMemStore(), repl, moc.NewMemStore(), moc.NewMemStore(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := moc.NewFleet(store, moc.FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sys, err := f.NewSystem(fleetBaseConfig(), "base")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ckpt := func(to int) {
		t.Helper()
		if _, err := sys.RunTo(to); err != nil {
			t.Fatal(err)
		}
		if err := sys.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		if err := sys.FlushCheckpoints(); err != nil {
			t.Fatal(err)
		}
	}
	ckpt(12)

	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 4 || rep.Backends != 5 || rep.Down != 0 {
		t.Fatalf("healthy sharded scrub wrong: %+v", rep)
	}

	// Shard 1's second replica fails; checkpoints keep landing through
	// the survivor, and the scrub attributes the outage to shard 1.
	flaky.Fail()
	ckpt(16)
	rep, err = f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Down != 1 || rep.Shards[1].Down != 1 {
		t.Fatalf("outage not attributed to shard 1: %+v", rep.Shards)
	}

	// Heal: the next pass runs shard 1's owed anti-entropy Sync alone.
	flaky.Heal()
	rep, err = f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards[1].Healed != 1 || rep.Shards[1].SyncCopies == 0 {
		t.Fatalf("per-shard repair missed: %+v", rep.Shards)
	}

	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("stats shards = %d, want 4", len(st.Shards))
	}
	var chunks int
	for _, ss := range st.Shards {
		chunks += ss.Chunks
	}
	if chunks == 0 || st.ShardBalance < 1.0 {
		t.Fatalf("per-shard distribution wrong: %+v (balance %f)", st.Shards, st.ShardBalance)
	}

	// Recovery reads fan back in across all shards bit-identically.
	lossBefore, _, err := sys.Evaluate(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectFault(); err != nil {
		t.Fatal(err)
	}
	lossAfter, _, err := sys.Evaluate(64)
	if err != nil {
		t.Fatal(err)
	}
	if !lossesClose(lossBefore, lossAfter) {
		t.Fatalf("sharded recovery not bit-identical: loss %v->%v", lossBefore, lossAfter)
	}

	// Grow online: add a fifth shard and migrate. Consistent hashing
	// bounds the movement near 1/5 of the keys, and the migration is
	// serialized against the fleet's writers and GC by the shared guard.
	if err := store.AddShard("shard-004", moc.NewMemStore()); err != nil {
		t.Fatal(err)
	}
	if !store.Migrating() {
		t.Fatal("pending membership change not reported")
	}
	mig, err := store.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if store.Migrating() {
		t.Fatal("migration did not retire the old ring")
	}
	if frac := mig.MovedFraction(); frac <= 0 || frac > 0.45 {
		t.Fatalf("moved fraction %.3f outside (0, 0.45]: %+v", frac, mig)
	}

	// The grown fleet still verifies, recovers, and reports five shards.
	if _, err := sys.VerifyStorage(); err != nil {
		t.Fatalf("verify after rebalance: %v", err)
	}
	if err := sys.InjectFault(); err != nil {
		t.Fatalf("recovery after rebalance: %v", err)
	}
	ckpt(20)
	st, err = f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 5 {
		t.Fatalf("stats shards after grow = %d, want 5", len(st.Shards))
	}
	rep, err = f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 0 || rep.Corrupt != 0 {
		t.Fatalf("post-rebalance scrub findings: %+v", rep)
	}
}

// Sharding composes with the rest of the storage stack: remote shards
// behind one cache tier still form one coherent checkpoint store.
func TestShardedOverRemoteComposition(t *testing.T) {
	var shards []moc.PersistStore
	for i := 0; i < 3; i++ {
		r, err := moc.NewRemoteStore(moc.RemoteConfig{Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, r)
	}
	sharded, err := moc.NewShardedStore(moc.ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := moc.NewCachedStore(sharded, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetBaseConfig()
	sys, err := moc.NewSystem(cfg, cached)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.RunTo(8); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := sys.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	lossBefore, _, err := sys.Evaluate(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectFault(); err != nil {
		t.Fatal(err)
	}
	lossAfter, _, err := sys.Evaluate(64)
	if err != nil {
		t.Fatal(err)
	}
	if !lossesClose(lossBefore, lossAfter) {
		t.Fatalf("recovery through cached sharded remotes: loss %v->%v", lossBefore, lossAfter)
	}
}
