// Package moc is the public API of the MoC-System reproduction: efficient
// fault tolerance for sparse Mixture-of-Experts model training, after
// "MoC-System: Efficient Fault Tolerance for Sparse Mixture-of-Experts
// Model Training" (Cai, Qin, Huang — ASPLOS 2025).
//
// The package offers two entry points:
//
//   - System (system.go) trains a real, small-scale MoE language model
//     while checkpointing it through the MoC pipeline — Partial Experts
//     Checkpointing with sequential or load-aware selection, two-level
//     (snapshot/persist) asynchronous management with triple buffering,
//     two-level recovery, Dynamic-K — and supports fault injection with
//     exact recovery semantics. It reproduces the paper's accuracy results
//     (Figures 5, 14, 15; Tables 3, 4) at laptop scale.
//
//   - SimulateCase / SimulateWorkload (sim.go) evaluate the checkpointing
//     efficiency of cluster-scale deployments with calibrated analytic
//     cost models and a discrete-event pipeline simulator, reproducing the
//     paper's efficiency results (Figures 10–13).
//
// Beyond the paper, the storage stack scales the checkpoint store to
// production shapes: content-addressed dedup with fixed or
// content-defined chunking, an LRU chunk cache, N-way replication with
// read repair, a simulated object-store backend (remotestore.go), and a
// multi-job fleet service (fleet.go) that serves many training jobs —
// a base model and its fine-tune forks — from one shared chunk store
// with cross-job dedup, epoch-fenced job leases, fleet-safe garbage
// collection, and a background scrub/repair daemon.
//
// The stack's concurrency and ownership contracts — copy-on-put,
// PutOwned ownership transfer, GetBuf/PutBuf pairing, the write-guard
// lock discipline, errors.Is for wrapped sentinels, and the
// internal/simtime wall-clock monopoly — are mechanically enforced by
// the project linter (internal/analysis, run as `go run ./cmd/mocvet
// ./...` or `mocckpt vet`); see the "Static analysis" section of
// README.md.
//
// See README.md for a walkthrough and EXPERIMENTS.md for the full
// paper-versus-measured experiment index.
package moc
